(** The Shift-And bit-parallel algorithm (paper §2.1, Fig 2, [3]).

    Executes one or several LNFAs with shift / AND / OR word operations.
    This is both the reference software engine for LNFA-mode consistency
    checks and the functional model of RAP's LNFA tiles: the packed layout
    of {!of_bin} is exactly the regex-sliced bin mapping of §3.2.

    Bit [i] of the state vector is state [qi]; patterns packed into one
    engine occupy disjoint contiguous bit ranges.  A bit shifted out of one
    pattern's range leaks into the next pattern's initial position, which
    is harmless because initial positions are re-armed by [maskInitial] on
    every step (unanchored matching). *)

type t

val of_lnfa : Lnfa.t -> t
val of_line : Charclass.t array -> t

val of_bin : Charclass.t array list -> t
(** Pack several single-final lines into one engine (a bin). *)

val width : t -> int
(** Total number of state bits. *)

val num_patterns : t -> int

type word_tables = {
  swt_width : int;  (** packed state bits — at most {!Bitvec.bits_per_word} *)
  swt_labels : int array;  (** 256 per-byte label masks *)
  swt_initial : int;  (** initial-position mask *)
}
(** The engine's masks as bare single-word values, for the SFA
    transfer-matrix construction (the transition itself is the word
    shift, so no successor table exists). *)

val word_tables : t -> word_tables option
(** [Some] iff the packed width fits one backing word. *)

val tables : t -> (string * Bitvec.t array) list
(** The engine's immutable mask vectors as live references, by name
    ([labels] — the 256 per-byte masks —, [initial], [final]): the
    regions the integrity layer CRC-seals at run start and repairs from
    pristine copies.  Do not mutate outside that layer. *)

(** {1 Execution} *)

type state

val state_words : t -> int
(** Arena words one stream's state occupies ({!Bitvec.words_for} of the
    packed width) — for sizing a shared {!Arena}. *)

val start : t -> state
(** Empty state in a private backing array. *)

val start_in : Arena.t -> t -> state
(** Empty state as an arena slice ([state_words t] words), so an engine
    can snapshot or clone its whole run state as one word blit. *)

val step : t -> state -> char -> bool
(** Advance by one symbol; [true] when some final state is active, i.e. a
    match ends at this symbol. *)

val active_count : t -> state -> int
(** Number of active states, for activity/energy statistics. *)

val state_vector : state -> Bitvec.t
(** The packed state bits (do not mutate); bit layout follows the packing
    order of {!of_bin}. *)

val final_hits : t -> state -> int
(** Number of active final states — the hardware's report count. *)

val pattern_offsets : t -> int array
(** Start bit of each packed pattern, in packing order. *)

val run : t -> string -> int list
(** Match end positions, ascending (same convention as {!Nfa.run}). *)

val count_matches : t -> string -> int

val trace : t -> string -> (Bitvec.t * bool) list
(** Per-symbol (state vector after update, match?) — reproduces the
    worked execution of the paper's Fig 2. *)
