type read_action = Read_exact of int | Read_all

type ste =
  | Plain of Charclass.t
  | Bv of { cc : Charclass.t; size : int; read : read_action }

(* Bit-parallel execution plan, built once per automaton: one bit per STE,
   in state order.  All mask vectors live in one flat [masks] table of
   hash-consed [nwords]-word rows — the per-byte label rows have bits only
   at Plain positions (the per-symbol AND therefore leaves every BV
   position clear, and the scalar BV pass sets exactly the BV bits that
   fire), and [labels_row]/[succ_row] map a byte or state to its row's
   word offset.  The kernels index [masks] directly, so a step touches one
   contiguous int array instead of chasing per-mask boxes. *)
type exec_plan = {
  nwords : int;  (* words per mask row: Bitvec.words_for (num states) *)
  masks : int array;  (* hash-consed rows, each nwords long *)
  labels_row : int array;  (* indexed by byte: row offset of its Plain-STE mask *)
  succ_row : int array;  (* per state: row offset of its successor mask *)
  initial_row : int;
  final_row : int;
  bv_states : int array;  (* dense indices of BV-STEs, ascending *)
  bv_match : Bytes.t;  (* 256 bytes per BV-STE: does byte b match its class *)
  bv_read : int array;  (* per BV-STE: m for Read_exact m, 0 for Read_all *)
}

type t = {
  stes : ste array;
  succs : int array array;
  preds : int array array;
  initial : bool array;
  finals : bool array;
  accepts_empty : bool;
  plan : exec_plan;
}

let cc_of = function Plain cc -> cc | Bv { cc; _ } -> cc
let num_states t = Array.length t.stes

let num_bv_stes t =
  Array.fold_left (fun acc s -> match s with Bv _ -> acc + 1 | Plain _ -> acc) 0 t.stes

let total_bv_bits t =
  Array.fold_left (fun acc s -> match s with Bv { size; _ } -> acc + size | Plain _ -> acc) 0 t.stes

type word_tables = {
  wt_n : int;
  wt_labels : int array;
  wt_succ : int array;
  wt_initial : int;
  wt_final : int;
}

(* The SFA transfer construction needs the transition structure as bare
   single-word masks: it only exists for automata whose whole plain-STE
   state space packs into one word and that carry no BV-STEs (a BV
   vector is per-run mutable state, not a function of the start set, so
   such automata compose by speculation instead). *)
let word_tables t =
  if num_bv_stes t > 0 || num_states t > Bitvec.bits_per_word then None
  else
    let p = t.plan in
    Some
      {
        wt_n = num_states t;
        wt_labels = Array.map (fun r -> p.masks.(r)) p.labels_row;
        wt_succ = Array.map (fun r -> p.masks.(r)) p.succ_row;
        wt_initial = p.masks.(p.initial_row);
        wt_final = p.masks.(p.final_row);
      }

(* Generalised Glushkov: leaves are plain classes or whole BV chunks.  A BV
   chunk cc{m} (exact, m >= 2) is non-nullable; cc{0,k} is nullable — its
   nullability realises the 0-repetition bypass edge for free. *)

module ISet = Set.Make (Int)

type info = { nullable : bool; first : ISet.t; last : ISet.t }

let of_ast r =
  let stes = ref [] in
  let count = ref 0 in
  let edges = ref [] in
  let new_state ste =
    let id = !count in
    incr count;
    stes := ste :: !stes;
    id
  in
  let connect lasts firsts =
    ISet.iter (fun p -> ISet.iter (fun q -> edges := (p, q) :: !edges) firsts) lasts
  in
  let leaf ste nullable =
    let p = new_state ste in
    { nullable; first = ISet.singleton p; last = ISet.singleton p }
  in
  let rec go r =
    match r with
    | Ast.Epsilon -> { nullable = true; first = ISet.empty; last = ISet.empty }
    | Ast.Class cc -> leaf (Plain cc) false
    | Ast.Concat (a, b) ->
        let ia = go a in
        let ib = go b in
        connect ia.last ib.first;
        {
          nullable = ia.nullable && ib.nullable;
          first = (if ia.nullable then ISet.union ia.first ib.first else ia.first);
          last = (if ib.nullable then ISet.union ia.last ib.last else ib.last);
        }
    | Ast.Alt (a, b) ->
        let ia = go a in
        let ib = go b in
        {
          nullable = ia.nullable || ib.nullable;
          first = ISet.union ia.first ib.first;
          last = ISet.union ia.last ib.last;
        }
    | Ast.Star a ->
        let ia = go a in
        connect ia.last ia.first;
        { ia with nullable = true }
    | Ast.Repeat (a, 0, Some 1) ->
        (* plain optionality: no counter needed *)
        let ia = go a in
        { ia with nullable = true }
    | Ast.Repeat (Ast.Class cc, m, Some n) when m = n && m >= 1 ->
        leaf (Bv { cc; size = m; read = Read_exact m }) false
    | Ast.Repeat (Ast.Class cc, 0, Some k) when k >= 2 ->
        leaf (Bv { cc; size = k; read = Read_all }) true
    | Ast.Repeat _ ->
        invalid_arg "Nbva.of_ast: residual repetition not of the form cc{m} or cc{0,k}"
  in
  let info = go r in
  let stes = Array.of_list (List.rev !stes) in
  let n = Array.length stes in
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  List.iter
    (fun (p, q) ->
      succ_lists.(p) <- q :: succ_lists.(p);
      pred_lists.(q) <- p :: pred_lists.(q))
    !edges;
  let finish l = Array.of_list (List.sort_uniq compare l) in
  let initial = Array.make n false and finals = Array.make n false in
  ISet.iter (fun q -> initial.(q) <- true) info.first;
  ISet.iter (fun q -> finals.(q) <- true) info.last;
  let succs = Array.map finish succ_lists in
  let labels_mask = Array.init 256 (fun _ -> Bitvec.create n) in
  let initial_mask = Bitvec.create n in
  let final_mask = Bitvec.create n in
  let succ_mask = Array.init n (fun _ -> Bitvec.create n) in
  let bv_states = ref [] in
  Array.iteri
    (fun q ste ->
      (match ste with
      | Plain cc -> Charclass.iter (fun b -> Bitvec.set labels_mask.(b) q) cc
      | Bv _ -> bv_states := q :: !bv_states);
      if initial.(q) then Bitvec.set initial_mask q;
      if finals.(q) then Bitvec.set final_mask q;
      Array.iter (fun s -> Bitvec.set succ_mask.(q) s) succs.(q))
    stes;
  (* Hash-cons the mask tables while packing them into one flat word
     table: states sharing a character class produce equal per-byte masks
     (most of the 256 entries collapse to a handful), and unfolded chains
     produce many equal successor masks.  Each distinct mask becomes one
     [nwords]-long row of [masks]; equal masks share a row offset.
     Sharing cuts compiled-program memory, and — because [Marshal]
     preserves the flat table as one block — keeps the cached placement
     artifact compact.  Safe: the kernels only ever read these rows
     (blit/AND/OR sources). *)
  let nwords = Bitvec.words_for n in
  let cons_tbl = Hashtbl.create 64 in
  let unique_rows = ref [] in
  let nrows = ref 0 in
  let row_of v =
    let key = Bytes.to_string (Bitvec.to_bytes v) in
    match Hashtbl.find_opt cons_tbl key with
    | Some r -> r
    | None ->
        let r = !nrows * nwords in
        incr nrows;
        unique_rows := v :: !unique_rows;
        Hashtbl.add cons_tbl key r;
        r
  in
  let labels_row = Array.map row_of labels_mask in
  let succ_row = Array.map row_of succ_mask in
  let initial_row = row_of initial_mask in
  let final_row = row_of final_mask in
  let masks = Array.make (!nrows * nwords) 0 in
  List.iteri
    (fun i v -> Bitvec.blit_words v masks ((!nrows - 1 - i) * nwords))
    !unique_rows;
  let bv_states = Array.of_list (List.rev !bv_states) in
  let nbv = Array.length bv_states in
  let bv_match = Bytes.make (nbv * 256) '\000' in
  let bv_read = Array.make nbv 0 in
  Array.iteri
    (fun i q ->
      match stes.(q) with
      | Bv { cc; read; size = _ } ->
          Charclass.iter (fun b -> Bytes.set bv_match ((i * 256) + b) '\001') cc;
          bv_read.(i) <- (match read with Read_exact m -> m | Read_all -> 0)
      | Plain _ -> assert false)
    bv_states;
  {
    stes;
    succs;
    preds = Array.map finish pred_lists;
    initial;
    finals;
    accepts_empty = info.nullable;
    plan =
      {
        nwords;
        masks;
        labels_row;
        succ_row;
        initial_row;
        final_row;
        bv_states;
        bv_match;
        bv_read;
      };
  }

let compile ~threshold r =
  of_ast (Rewrite.split_bounded (Rewrite.unfold_for_nbva ~threshold r))

(* Execution.

   All mutable state packs into one {!Arena}: the active/next/avail masks
   first, then every BV vector in state order.  The flat layout makes
   snapshot/clone a single word blit (the engine layer leans on this for
   rollbacks and service sessions) and lets the kernel below run over raw
   int arrays with zero steady-state allocation.  There is no
   active/next pointer swap: [step] copies next back into active, so
   [outputs] is a stable arena view and a raw word snapshot needs no swap
   parity on the side. *)

type run_state = {
  st_arena : Arena.t;
  act_off : int;  (* nwords: output activation after the last symbol *)
  nxt_off : int;  (* nwords: scratch successor activation *)
  av_off : int;  (* nwords: scratch availability this symbol *)
  active_v : Bitvec.t;  (* arena views of the three masks above *)
  next_v : Bitvec.t;
  avail_v : Bitvec.t;
  vectors : Bitvec.t option array;  (* per-STE arena slice, None for Plain *)
}

let state_words t =
  let n = num_states t in
  Array.fold_left
    (fun acc s ->
      match s with Bv { size; _ } -> acc + Bitvec.words_for size | Plain _ -> acc)
    (3 * Bitvec.words_for n) t.stes

let start ?arena t =
  let n = num_states t in
  (* a private arena gets a trailing guard word (an armed canary past the
     state words) so runtime corruption sweeping past the live vectors is
     detectable; shared arenas are sized by the caller from [state_words]
     and stay guard-free so that contract holds *)
  let arena, private_arena =
    match arena with
    | Some a -> (a, false)
    | None -> (Arena.create ~capacity:(state_words t + 1), true)
  in
  let nw = Bitvec.words_for n in
  let act_off = Arena.alloc arena nw in
  let nxt_off = Arena.alloc arena nw in
  let av_off = Arena.alloc arena nw in
  let vectors =
    Array.map
      (function Bv { size; _ } -> Some (Bitvec.alloc_in arena size) | Plain _ -> None)
      t.stes
  in
  if private_arena then Arena.guard arena;
  {
    st_arena = arena;
    act_off;
    nxt_off;
    av_off;
    active_v = Bitvec.of_arena arena ~off:act_off ~width:n;
    next_v = Bitvec.of_arena arena ~off:nxt_off ~width:n;
    avail_v = Bitvec.of_arena arena ~off:av_off ~width:n;
    vectors;
  }

let run_arena st = st.st_arena

let bpw = Bitvec.bits_per_word

(* Three plan tables hold INDICES, not data: [succ_row] and [labels_row]
   point into the flat mask table, [bv_states] into the per-stream state
   buffers.  The kernels feed them to unsafe accesses, so a corrupted
   index word (a soft error in a long-lived process, or a chaos-harness
   flip) is a wild read or write — a segfault or silent heap corruption.
   Range-checking the index at its fetch turns that into a catchable
   exception the integrity layer's seal check then attributes and heals;
   pure data corruption (mask words, [bv_match] bytes) stays unchecked —
   it is in-bounds by construction and the CRC sweep / sentinel own it. *)
let corrupt_index () = invalid_arg "Nbva: corrupt plan table (index out of range)"

(* Bit-parallel kernel: availability and Plain-STE activation are computed
   word-parallel straight over the arena's int array and the plan's flat
   mask table; only BV-STEs (a short dense list) get a scalar vector
   update, with the class-membership test folded into the precomputed
   [bv_match] byte table.  Every buffer lives in the arena, so the
   steady-state loop allocates nothing — not even closures or boxed
   intermediates. *)
let step t st c =
  let p = t.plan in
  let nw = p.nwords in
  let w = Arena.words st.st_arena in
  let masks = p.masks in
  let act = st.act_off and nxt = st.nxt_off and av = st.av_off in
  let row_limit = Array.length masks - nw in
  (* avail = initial OR (union of successor masks of active states) *)
  Array.blit masks p.initial_row w av nw;
  let succ_row = p.succ_row in
  for j = 0 to nw - 1 do
    let aw = ref (Array.unsafe_get w (act + j)) in
    if !aw <> 0 then begin
      let base = j * bpw in
      while !aw <> 0 do
        let row = Array.unsafe_get succ_row (base + Bitvec.lsb_index !aw) in
        if row < 0 || row > row_limit then corrupt_index ();
        for i = 0 to nw - 1 do
          Array.unsafe_set w (av + i)
            (Array.unsafe_get w (av + i) lor Array.unsafe_get masks (row + i))
        done;
        aw := !aw land (!aw - 1)
      done
    end
  done;
  (* Plain STEs, all at once: next = avail AND labels[c] *)
  let lrow = Array.unsafe_get p.labels_row (Char.code c) in
  if lrow < 0 || lrow > row_limit then corrupt_index ();
  for i = 0 to nw - 1 do
    Array.unsafe_set w (nxt + i)
      (Array.unsafe_get w (av + i) land Array.unsafe_get masks (lrow + i))
  done;
  (* BV-STEs keep their scalar vector updates, driven from the dense list *)
  let bvs = p.bv_states in
  for i = 0 to Array.length bvs - 1 do
    let q = Array.unsafe_get bvs i in
    if q < 0 || q >= Array.length st.vectors then corrupt_index ();
    let v = match Array.unsafe_get st.vectors q with Some v -> v | None -> assert false in
    if Bytes.unsafe_get p.bv_match ((i * 256) + Char.code c) <> '\000' then begin
      Bitvec.shift_left1 v ~carry_in:false;
      if (Array.unsafe_get w (av + (q / bpw)) lsr (q mod bpw)) land 1 = 1 then
        Bitvec.set v 0
    end
    else Bitvec.clear v;
    let m = Array.unsafe_get p.bv_read i in
    let fires = if m > 0 then Bitvec.get v (m - 1) else not (Bitvec.is_zero v) in
    if fires then begin
      let wq = nxt + (q / bpw) in
      Array.unsafe_set w wq (Array.unsafe_get w wq lor (1 lsl (q mod bpw)))
    end
  done;
  (* copy next back into active and test finals on the way *)
  let frow = p.final_row in
  let hit = ref false in
  for i = 0 to nw - 1 do
    let x = Array.unsafe_get w (nxt + i) in
    Array.unsafe_set w (act + i) x;
    if x land Array.unsafe_get masks (frow + i) <> 0 then hit := true
  done;
  !hit

(* The pre-bit-parallel scalar kernel, kept as the differential-testing
   reference: one pass over all states probing predecessor lists.  Must
   stay bit-identical to [step] (asserted by test/test_nbva_diff.ml). *)
let step_reference t st c =
  let n = num_states t in
  let hit = ref false in
  for q = 0 to n - 1 do
    let avail = t.initial.(q) || Array.exists (fun j -> Bitvec.get st.active_v j) t.preds.(q) in
    let active =
      match t.stes.(q) with
      | Plain cc -> avail && Charclass.mem cc c
      | Bv { cc; read; size = _ } -> (
          let v = match st.vectors.(q) with Some v -> v | None -> assert false in
          if Charclass.mem cc c then begin
            Bitvec.shift_left1 v ~carry_in:false;
            if avail then Bitvec.set v 0
          end
          else Bitvec.clear v;
          match read with
          | Read_exact m -> Bitvec.get v (m - 1)
          | Read_all -> not (Bitvec.is_zero v))
    in
    if active then begin
      Bitvec.set st.next_v q;
      if t.finals.(q) then hit := true
    end
    else Bitvec.reset st.next_v q
  done;
  Bitvec.blit ~src:st.next_v ~dst:st.active_v;
  !hit

(* Specialized single-word kernel for automata whose [word_tables] exist
   (no BV-STEs, <= bits_per_word states): the whole step is scalar word
   arithmetic on the bare masks — no flat-table indirection, no BV
   phase, no next/avail scratch traffic (those words are dead between
   steps and excluded from state digests).  Bit-identical activation
   words and hit flag to [step]. *)
let step_word wt st c =
  let w = Arena.words st.st_arena in
  let width_mask = (1 lsl wt.wt_n) - 1 in
  let a = ref (Array.unsafe_get w st.act_off land width_mask) in
  let av = ref wt.wt_initial in
  let succ = wt.wt_succ in
  while !a <> 0 do
    av := !av lor Array.unsafe_get succ (Bitvec.lsb_index !a);
    a := !a land (!a - 1)
  done;
  let nxt = !av land Array.unsafe_get wt.wt_labels (Char.code c) in
  Array.unsafe_set w st.act_off nxt;
  nxt land wt.wt_final <> 0

type kernel = Bit_parallel | Reference

let kernel = ref Bit_parallel

let step_selected t st c =
  match !kernel with Bit_parallel -> step t st c | Reference -> step_reference t st c

(* Batched stepping: K independent streams against one shared automaton.
   Phase-major, stream-minor — every phase sweeps all K streams before
   the next phase begins, so the 256-entry labels table and the successor
   masks are traversed once per kernel pass while serving every stream
   (they stay cache-resident instead of being evicted between per-stream
   steps).  Per-stream results are bit-identical to [step]: each phase
   reads and writes only that stream's buffers, in the same order. *)
let step_multi t sts cs hits =
  let p = t.plan in
  let nw = p.nwords in
  let masks = p.masks in
  let k = Array.length sts in
  if Array.length cs < k || Array.length hits < k then
    invalid_arg "Nbva.step_multi: per-stream buffers shorter than the state array";
  let row_limit = Array.length masks - nw in
  for s = 0 to k - 1 do
    let st = sts.(s) in
    let w = Arena.words st.st_arena in
    let act = st.act_off and av = st.av_off in
    Array.blit masks p.initial_row w av nw;
    for j = 0 to nw - 1 do
      let aw = ref (Array.unsafe_get w (act + j)) in
      if !aw <> 0 then begin
        let base = j * bpw in
        while !aw <> 0 do
          let row = Array.unsafe_get p.succ_row (base + Bitvec.lsb_index !aw) in
          if row < 0 || row > row_limit then corrupt_index ();
          for i = 0 to nw - 1 do
            Array.unsafe_set w (av + i)
              (Array.unsafe_get w (av + i) lor Array.unsafe_get masks (row + i))
          done;
          aw := !aw land (!aw - 1)
        done
      end
    done
  done;
  for s = 0 to k - 1 do
    let st = sts.(s) in
    let w = Arena.words st.st_arena in
    let lrow = Array.unsafe_get p.labels_row (Char.code cs.(s)) in
    if lrow < 0 || lrow > row_limit then corrupt_index ();
    for i = 0 to nw - 1 do
      Array.unsafe_set w (st.nxt_off + i)
        (Array.unsafe_get w (st.av_off + i) land Array.unsafe_get masks (lrow + i))
    done
  done;
  let bvs = p.bv_states in
  for j = 0 to Array.length bvs - 1 do
    let q = Array.unsafe_get bvs j in
    let m = Array.unsafe_get p.bv_read j in
    for s = 0 to k - 1 do
      let st = sts.(s) in
      let w = Arena.words st.st_arena in
      if q < 0 || q >= Array.length st.vectors then corrupt_index ();
      let v = match Array.unsafe_get st.vectors q with Some v -> v | None -> assert false in
      if Bytes.unsafe_get p.bv_match ((j * 256) + Char.code cs.(s)) <> '\000' then begin
        Bitvec.shift_left1 v ~carry_in:false;
        if (Array.unsafe_get w (st.av_off + (q / bpw)) lsr (q mod bpw)) land 1 = 1 then
          Bitvec.set v 0
      end
      else Bitvec.clear v;
      let fires = if m > 0 then Bitvec.get v (m - 1) else not (Bitvec.is_zero v) in
      if fires then begin
        let wq = st.nxt_off + (q / bpw) in
        Array.unsafe_set w wq (Array.unsafe_get w wq lor (1 lsl (q mod bpw)))
      end
    done
  done;
  let frow = p.final_row in
  for s = 0 to k - 1 do
    let st = sts.(s) in
    let w = Arena.words st.st_arena in
    let act = st.act_off and nxt = st.nxt_off in
    let hit = ref false in
    for i = 0 to nw - 1 do
      let x = Array.unsafe_get w (nxt + i) in
      Array.unsafe_set w (act + i) x;
      if x land Array.unsafe_get masks (frow + i) <> 0 then hit := true
    done;
    hits.(s) <- !hit
  done

let step_multi_selected t sts cs hits =
  match !kernel with
  | Bit_parallel -> step_multi t sts cs hits
  | Reference -> Array.iteri (fun i st -> hits.(i) <- step_reference t st cs.(i)) sts

let mask_table_stats t =
  let p = t.plan in
  (Array.length p.masks / p.nwords, Array.length p.labels_row + Array.length p.succ_row + 2)

(* The plan's backing tables, by name, as the live references the kernel
   reads — the integrity layer seals these with CRC-32 at run start and
   repairs them from pristine copies when a sweep finds them corrupted.
   [step_reference] deliberately reads none of them (it probes
   [preds]/[initial]/[stes] instead), which is what makes shadow replay
   a detector for mask-table corruption. *)
let plan_tables t =
  let p = t.plan in
  [
    ("masks", p.masks);
    ("labels_row", p.labels_row);
    ("succ_row", p.succ_row);
    ("bv_states", p.bv_states);
    ("bv_read", p.bv_read);
  ]

let plan_bytes t = [ ("bv_match", t.plan.bv_match) ]

let bv_active_count t st =
  let acc = ref 0 in
  Array.iteri
    (fun q ste ->
      match (ste, st.vectors.(q)) with
      | Bv _, Some v when not (Bitvec.is_zero v) -> incr acc
      | _ -> ())
    t.stes;
  !acc

let active_count _t st = Bitvec.popcount st.active_v

let outputs st = st.active_v
let active_slice st = (Arena.words st.st_arena, st.act_off)
let vectors st = st.vectors

let reports t st =
  let p = t.plan in
  let w = Arena.words st.st_arena in
  let masks = p.masks in
  let acc = ref 0 in
  for i = 0 to p.nwords - 1 do
    acc := !acc + Bitvec.popcount_word (Array.unsafe_get w (st.act_off + i) land Array.unsafe_get masks (p.final_row + i))
  done;
  !acc

let match_ends t input =
  let st = start t in
  let acc = ref [] in
  String.iteri (fun p c -> if step_selected t st c then acc := p :: !acc) input;
  List.rev !acc

let count_matches t input = List.length (match_ends t input)

let pp fmt t =
  Format.fprintf fmt "@[<v>NBVA with %d states (%d BV-STEs, %d BV bits):@," (num_states t)
    (num_bv_stes t) (total_bv_bits t);
  Array.iteri
    (fun q ste ->
      let kind =
        match ste with
        | Plain cc -> Format.asprintf "%a" Charclass.pp cc
        | Bv { cc; size; read } ->
            Format.asprintf "%a{bv %d, %s}" Charclass.pp cc size
              (match read with Read_exact m -> Printf.sprintf "r(%d)" m | Read_all -> "rAll")
      in
      Format.fprintf fmt "  q%d%s%s: %s -> [%s]@," q
        (if t.initial.(q) then "(i)" else "")
        (if t.finals.(q) then "(f)" else "")
        kind
        (String.concat "," (Array.to_list (Array.map string_of_int t.succs.(q)))))
    t.stes;
  Format.fprintf fmt "@]"
