type read_action = Read_exact of int | Read_all

type ste =
  | Plain of Charclass.t
  | Bv of { cc : Charclass.t; size : int; read : read_action }

(* Bit-parallel execution plan, built once per automaton: one bit per STE,
   in state order.  [labels_mask] has bits only at Plain positions — the
   per-symbol AND therefore leaves every BV position clear, and the scalar
   BV pass sets exactly the BV bits that fire. *)
type exec_plan = {
  labels_mask : Bitvec.t array;  (* indexed by byte: Plain STEs whose class matches *)
  initial_mask : Bitvec.t;
  final_mask : Bitvec.t;
  succ_mask : Bitvec.t array;  (* per state: its successors as a mask *)
  bv_states : int array;  (* dense indices of BV-STEs, ascending *)
}

type t = {
  stes : ste array;
  succs : int array array;
  preds : int array array;
  initial : bool array;
  finals : bool array;
  accepts_empty : bool;
  plan : exec_plan;
}

let cc_of = function Plain cc -> cc | Bv { cc; _ } -> cc
let num_states t = Array.length t.stes

let num_bv_stes t =
  Array.fold_left (fun acc s -> match s with Bv _ -> acc + 1 | Plain _ -> acc) 0 t.stes

let total_bv_bits t =
  Array.fold_left (fun acc s -> match s with Bv { size; _ } -> acc + size | Plain _ -> acc) 0 t.stes

(* Generalised Glushkov: leaves are plain classes or whole BV chunks.  A BV
   chunk cc{m} (exact, m >= 2) is non-nullable; cc{0,k} is nullable — its
   nullability realises the 0-repetition bypass edge for free. *)

module ISet = Set.Make (Int)

type info = { nullable : bool; first : ISet.t; last : ISet.t }

let of_ast r =
  let stes = ref [] in
  let count = ref 0 in
  let edges = ref [] in
  let new_state ste =
    let id = !count in
    incr count;
    stes := ste :: !stes;
    id
  in
  let connect lasts firsts =
    ISet.iter (fun p -> ISet.iter (fun q -> edges := (p, q) :: !edges) firsts) lasts
  in
  let leaf ste nullable =
    let p = new_state ste in
    { nullable; first = ISet.singleton p; last = ISet.singleton p }
  in
  let rec go r =
    match r with
    | Ast.Epsilon -> { nullable = true; first = ISet.empty; last = ISet.empty }
    | Ast.Class cc -> leaf (Plain cc) false
    | Ast.Concat (a, b) ->
        let ia = go a in
        let ib = go b in
        connect ia.last ib.first;
        {
          nullable = ia.nullable && ib.nullable;
          first = (if ia.nullable then ISet.union ia.first ib.first else ia.first);
          last = (if ib.nullable then ISet.union ia.last ib.last else ib.last);
        }
    | Ast.Alt (a, b) ->
        let ia = go a in
        let ib = go b in
        {
          nullable = ia.nullable || ib.nullable;
          first = ISet.union ia.first ib.first;
          last = ISet.union ia.last ib.last;
        }
    | Ast.Star a ->
        let ia = go a in
        connect ia.last ia.first;
        { ia with nullable = true }
    | Ast.Repeat (a, 0, Some 1) ->
        (* plain optionality: no counter needed *)
        let ia = go a in
        { ia with nullable = true }
    | Ast.Repeat (Ast.Class cc, m, Some n) when m = n && m >= 1 ->
        leaf (Bv { cc; size = m; read = Read_exact m }) false
    | Ast.Repeat (Ast.Class cc, 0, Some k) when k >= 2 ->
        leaf (Bv { cc; size = k; read = Read_all }) true
    | Ast.Repeat _ ->
        invalid_arg "Nbva.of_ast: residual repetition not of the form cc{m} or cc{0,k}"
  in
  let info = go r in
  let stes = Array.of_list (List.rev !stes) in
  let n = Array.length stes in
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  List.iter
    (fun (p, q) ->
      succ_lists.(p) <- q :: succ_lists.(p);
      pred_lists.(q) <- p :: pred_lists.(q))
    !edges;
  let finish l = Array.of_list (List.sort_uniq compare l) in
  let initial = Array.make n false and finals = Array.make n false in
  ISet.iter (fun q -> initial.(q) <- true) info.first;
  ISet.iter (fun q -> finals.(q) <- true) info.last;
  let succs = Array.map finish succ_lists in
  let labels_mask = Array.init 256 (fun _ -> Bitvec.create n) in
  let initial_mask = Bitvec.create n in
  let final_mask = Bitvec.create n in
  let succ_mask = Array.init n (fun _ -> Bitvec.create n) in
  let bv_states = ref [] in
  Array.iteri
    (fun q ste ->
      (match ste with
      | Plain cc -> Charclass.iter (fun b -> Bitvec.set labels_mask.(b) q) cc
      | Bv _ -> bv_states := q :: !bv_states);
      if initial.(q) then Bitvec.set initial_mask q;
      if finals.(q) then Bitvec.set final_mask q;
      Array.iter (fun s -> Bitvec.set succ_mask.(q) s) succs.(q))
    stes;
  (* Hash-cons the mask tables: states sharing a character class produce
     equal per-byte masks (most of the 256 entries collapse to a handful),
     and unfolded chains produce many equal successor masks.  Sharing them
     cuts compiled-program memory, and — because [Marshal] preserves
     sharing — shrinks the cached placement artifact.  Safe: the kernels
     only ever read these vectors (blit/AND/OR sources). *)
  let cons_tbl = Hashtbl.create 64 in
  let canon v =
    let key = Bytes.to_string (Bitvec.to_bytes v) in
    match Hashtbl.find_opt cons_tbl key with
    | Some c -> c
    | None ->
        Hashtbl.add cons_tbl key v;
        v
  in
  {
    stes;
    succs;
    preds = Array.map finish pred_lists;
    initial;
    finals;
    accepts_empty = info.nullable;
    plan =
      {
        labels_mask = Array.map canon labels_mask;
        initial_mask = canon initial_mask;
        final_mask = canon final_mask;
        succ_mask = Array.map canon succ_mask;
        bv_states = Array.of_list (List.rev !bv_states);
      };
  }

let compile ~threshold r =
  of_ast (Rewrite.split_bounded (Rewrite.unfold_for_nbva ~threshold r))

(* Execution. *)

type run_state = {
  mutable active : Bitvec.t;  (* output activation after the last symbol, one bit per STE *)
  mutable next : Bitvec.t;  (* scratch double buffer, swapped with [active] *)
  avail : Bitvec.t;  (* scratch: availability of each STE this symbol *)
  vectors : Bitvec.t option array;  (* per-STE bit vector, None for Plain *)
  or_succ : int -> unit;  (* preallocated [avail |= succ_mask.(q)], for iter_set *)
}

let start t =
  let n = num_states t in
  let avail = Bitvec.create n in
  let succ_mask = t.plan.succ_mask in
  {
    active = Bitvec.create n;
    next = Bitvec.create n;
    avail;
    vectors =
      Array.map (function Bv { size; _ } -> Some (Bitvec.create size) | Plain _ -> None) t.stes;
    or_succ = (fun q -> Bitvec.or_in avail succ_mask.(q));
  }

(* Bit-parallel kernel: availability and Plain-STE activation are computed
   word-parallel over the packed active vector; only BV-STEs (a short dense
   list) get a scalar vector update.  Every buffer lives in [run_state], so
   the steady-state loop allocates nothing. *)
let step t st c =
  let p = t.plan in
  (* avail = initial OR (union of successor masks of active states) *)
  Bitvec.blit ~src:p.initial_mask ~dst:st.avail;
  Bitvec.iter_set st.or_succ st.active;
  (* Plain STEs, all at once: next = avail AND labels[c] *)
  Bitvec.blit ~src:st.avail ~dst:st.next;
  Bitvec.and_in st.next p.labels_mask.(Char.code c);
  (* BV-STEs keep their scalar vector updates, driven from the dense list *)
  let bvs = p.bv_states in
  for i = 0 to Array.length bvs - 1 do
    let q = bvs.(i) in
    match t.stes.(q) with
    | Plain _ -> assert false
    | Bv { cc; read; size = _ } ->
        let v = match st.vectors.(q) with Some v -> v | None -> assert false in
        if Charclass.mem cc c then begin
          Bitvec.shift_left1 v ~carry_in:false;
          if Bitvec.get st.avail q then Bitvec.set v 0
        end
        else Bitvec.clear v;
        let fires =
          match read with
          | Read_exact m -> Bitvec.get v (m - 1)
          | Read_all -> not (Bitvec.is_zero v)
        in
        if fires then Bitvec.set st.next q
  done;
  let cur = st.active in
  st.active <- st.next;
  st.next <- cur;
  Bitvec.intersects st.active p.final_mask

(* The pre-bit-parallel scalar kernel, kept as the differential-testing
   reference: one pass over all states probing predecessor lists.  Must
   stay bit-identical to [step] (asserted by test/test_nbva_diff.ml). *)
let step_reference t st c =
  let n = num_states t in
  let hit = ref false in
  for q = 0 to n - 1 do
    let avail = t.initial.(q) || Array.exists (fun j -> Bitvec.get st.active j) t.preds.(q) in
    let active =
      match t.stes.(q) with
      | Plain cc -> avail && Charclass.mem cc c
      | Bv { cc; read; size = _ } -> (
          let v = match st.vectors.(q) with Some v -> v | None -> assert false in
          if Charclass.mem cc c then begin
            Bitvec.shift_left1 v ~carry_in:false;
            if avail then Bitvec.set v 0
          end
          else Bitvec.clear v;
          match read with
          | Read_exact m -> Bitvec.get v (m - 1)
          | Read_all -> not (Bitvec.is_zero v))
    in
    if active then begin
      Bitvec.set st.next q;
      if t.finals.(q) then hit := true
    end
    else Bitvec.reset st.next q
  done;
  let cur = st.active in
  st.active <- st.next;
  st.next <- cur;
  !hit

type kernel = Bit_parallel | Reference

let kernel = ref Bit_parallel

let step_selected t st c =
  match !kernel with Bit_parallel -> step t st c | Reference -> step_reference t st c

(* Batched stepping: K independent streams against one shared automaton.
   Phase-major, stream-minor — every phase sweeps all K streams before
   the next phase begins, so the 256-entry labels table and the successor
   masks are traversed once per kernel pass while serving every stream
   (they stay cache-resident instead of being evicted between per-stream
   steps).  Per-stream results are bit-identical to [step]: each phase
   reads and writes only that stream's buffers, in the same order. *)
let step_multi t sts cs hits =
  let p = t.plan in
  let k = Array.length sts in
  if Array.length cs < k || Array.length hits < k then
    invalid_arg "Nbva.step_multi: per-stream buffers shorter than the state array";
  for i = 0 to k - 1 do
    let st = sts.(i) in
    Bitvec.blit ~src:p.initial_mask ~dst:st.avail;
    Bitvec.iter_set st.or_succ st.active
  done;
  for i = 0 to k - 1 do
    let st = sts.(i) in
    Bitvec.blit ~src:st.avail ~dst:st.next;
    Bitvec.and_in st.next p.labels_mask.(Char.code cs.(i))
  done;
  let bvs = p.bv_states in
  for j = 0 to Array.length bvs - 1 do
    let q = bvs.(j) in
    match t.stes.(q) with
    | Plain _ -> assert false
    | Bv { cc; read; size = _ } ->
        for i = 0 to k - 1 do
          let st = sts.(i) in
          let v = match st.vectors.(q) with Some v -> v | None -> assert false in
          if Charclass.mem cc cs.(i) then begin
            Bitvec.shift_left1 v ~carry_in:false;
            if Bitvec.get st.avail q then Bitvec.set v 0
          end
          else Bitvec.clear v;
          let fires =
            match read with
            | Read_exact m -> Bitvec.get v (m - 1)
            | Read_all -> not (Bitvec.is_zero v)
          in
          if fires then Bitvec.set st.next q
        done
  done;
  for i = 0 to k - 1 do
    let st = sts.(i) in
    let cur = st.active in
    st.active <- st.next;
    st.next <- cur;
    hits.(i) <- Bitvec.intersects st.active p.final_mask
  done

let step_multi_selected t sts cs hits =
  match !kernel with
  | Bit_parallel -> step_multi t sts cs hits
  | Reference -> Array.iteri (fun i st -> hits.(i) <- step_reference t st cs.(i)) sts

let mask_table_stats t =
  let p = t.plan in
  let seen = ref [] in
  let add v = if not (List.memq v !seen) then seen := v :: !seen in
  Array.iter add p.labels_mask;
  Array.iter add p.succ_mask;
  add p.initial_mask;
  add p.final_mask;
  (List.length !seen, Array.length p.labels_mask + Array.length p.succ_mask + 2)

let bv_active_count t st =
  let acc = ref 0 in
  Array.iteri
    (fun q ste ->
      match (ste, st.vectors.(q)) with
      | Bv _, Some v when not (Bitvec.is_zero v) -> incr acc
      | _ -> ())
    t.stes;
  !acc

let active_count _t st = Bitvec.popcount st.active

let outputs st = st.active
let vectors st = st.vectors
let reports t st = Bitvec.popcount_and st.active t.plan.final_mask

let match_ends t input =
  let st = start t in
  let acc = ref [] in
  String.iteri (fun p c -> if step_selected t st c then acc := p :: !acc) input;
  List.rev !acc

let count_matches t input = List.length (match_ends t input)

let pp fmt t =
  Format.fprintf fmt "@[<v>NBVA with %d states (%d BV-STEs, %d BV bits):@," (num_states t)
    (num_bv_stes t) (total_bv_bits t);
  Array.iteri
    (fun q ste ->
      let kind =
        match ste with
        | Plain cc -> Format.asprintf "%a" Charclass.pp cc
        | Bv { cc; size; read } ->
            Format.asprintf "%a{bv %d, %s}" Charclass.pp cc size
              (match read with Read_exact m -> Printf.sprintf "r(%d)" m | Read_all -> "rAll")
      in
      Format.fprintf fmt "  q%d%s%s: %s -> [%s]@," q
        (if t.initial.(q) then "(i)" else "")
        (if t.finals.(q) then "(f)" else "")
        kind
        (String.concat "," (Array.to_list (Array.map string_of_int t.succs.(q)))))
    t.stes;
  Format.fprintf fmt "@]"
