type params = {
  unfold_threshold : int;
  bv_depth : int;
  bin_size : int;
  lnfa_max_blowup : float;
  dfa_state_budget : int;
  dfa_cache_states : int;
}

let default_params =
  {
    unfold_threshold = 8;
    bv_depth = 8;
    bin_size = 8;
    lnfa_max_blowup = 2.0;
    dfa_state_budget = 64;
    dfa_cache_states = 512;
  }

type nfa_unit = {
  nfa : Nfa.t;
  tile_of_state : int array;
  tile_states : int array;
  tile_cols : int array;
  cross_edges : (int * int) list;
}

type bv_alloc = { ste : int; size : int; width : int; read : Nbva.read_action }

type nbva_tile = {
  states : int list;
  cc_cols : int;
  set1_cols : int;
  bv_cols : int;
  bvs : bv_alloc list;
}

type nbva_unit = {
  nbva : Nbva.t;
  depth : int;
  ntiles : nbva_tile array;
  tile_of_state : int array;
  cross_edges : (int * int) list;
  bv_bits_cap : int;  (* per-tile BV storage budget of the target design *)
}

type lnfa_line = { labels : Charclass.t array; single_code : bool }
type lnfa_unit = { lines : lnfa_line list; states : int }
type unit_kind = U_nfa of nfa_unit | U_nbva of nbva_unit | U_lnfa of lnfa_unit

type exec_hint = H_default | H_dfa of { dfa_cache_states : int }

type compiled = { source : string; ast : Ast.t; kind : unit_kind; hint : exec_hint }

let hint_name = function H_default -> "default" | H_dfa _ -> "DFA"

let mode_name = function U_nfa _ -> "NFA" | U_nbva _ -> "NBVA" | U_lnfa _ -> "LNFA"

let lnfa_line_capacity line =
  (* states per tile when the line is alone in a tile: CAM plus one-hot
     switch storage for single-code lines *)
  if line.single_code then Circuit.tile_cam_cols + (Circuit.tile_cam_cols / 2)
  else Circuit.tile_cam_cols / 2

let num_tiles = function
  | U_nfa u -> Array.length u.tile_states
  | U_nbva u -> Array.length u.ntiles
  | U_lnfa u ->
      List.fold_left
        (fun acc line ->
          acc + ((Array.length line.labels + lnfa_line_capacity line - 1) / lnfa_line_capacity line))
        0 u.lines

let num_states = function
  | U_nfa u -> Nfa.num_states u.nfa
  | U_nbva u -> Nbva.num_states u.nbva
  | U_lnfa u -> u.states

let cols_of_tile kind i =
  match kind with
  | U_nfa u -> u.tile_cols.(i)
  | U_nbva u ->
      let t = u.ntiles.(i) in
      t.cc_cols + t.set1_cols + t.bv_cols
  | U_lnfa u ->
      (* tiles are enumerated line by line; the last tile of a line may be
         partial *)
      let rec walk lines i =
        match lines with
        | [] -> invalid_arg "Program.cols_of_tile: tile index out of range"
        | line :: rest ->
            let cap = lnfa_line_capacity line in
            let len = Array.length line.labels in
            let tiles = (len + cap - 1) / cap in
            if i < tiles then
              let states_here = if i = tiles - 1 then len - (i * cap) else cap in
              if line.single_code then states_here else 2 * states_here
            else walk rest (i - tiles)
      in
      walk u.lines i

let pp_compiled fmt c =
  Format.fprintf fmt "@[<v>%s: %s, %d states, %d tiles@]" c.source (mode_name c.kind)
    (num_states c.kind) (num_tiles c.kind)
