type piece =
  | P_unit of { unit_id : int; local_tile : int }
  | P_bin of { bin_id : int; bin_tile : int }

type tile_mode = T_nfa | T_nbva | T_lnfa

type placed_tile = { mode : tile_mode; phys : int; pieces : piece list }

type placement = {
  units : Program.compiled array;
  bins : Binning.bin array;
  arrays : placed_tile array array;
}

type defect_stats = {
  dead_tiles_skipped : int;
  cols_lost : int;
  cols_repaired : int;
}

let no_defect_stats = { dead_tiles_skipped = 0; cols_lost = 0; cols_repaired = 0 }

(* Resource demand of one tile piece. *)
type demand = {
  d_mode : tile_mode;
  d_cols : int;  (* columns (NFA/NBVA) or state slots (LNFA) *)
  d_cap : int;  (* tile capacity in the same unit *)
  d_bv_bits : int;
  d_bits_cap : int;
  d_has_r : bool;
  d_has_rall : bool;
  d_exclusive : bool;  (* multi-tile bins own their tiles *)
}

(* Mutable tile under construction, pinned to a physical slot. *)
type building = {
  b_mode : tile_mode;
  b_cap : int;  (* nominal capacity (sharing-compatibility key) *)
  b_eff : int;  (* effective capacity after stuck-column losses *)
  b_phys : int;  (* physical tile index within the array *)
  mutable b_cols : int;
  mutable b_bits : int;
  b_bits_cap : int;
  mutable b_has_r : bool;
  mutable b_has_rall : bool;
  mutable b_exclusive : bool;
  mutable b_pieces : piece list;
}

let demand_of_unit ~tile_cols (c : Program.compiled) local_tile =
  match c.Program.kind with
  | Program.U_nfa u ->
      {
        d_mode = T_nfa;
        d_cols = u.Program.tile_cols.(local_tile);
        d_cap = tile_cols;
        d_bv_bits = 0;
        d_bits_cap = Circuit.max_bv_bits_per_tile;
        d_has_r = false;
        d_has_rall = false;
        d_exclusive = false;
      }
  | Program.U_nbva u ->
      let t = u.Program.ntiles.(local_tile) in
      let has_r, has_rall =
        List.fold_left
          (fun (r, ra) (a : Program.bv_alloc) ->
            match a.Program.read with
            | Nbva.Read_exact _ -> (true, ra)
            | Nbva.Read_all -> (r, true))
          (false, false) t.Program.bvs
      in
      {
        d_mode = T_nbva;
        d_cols = t.Program.cc_cols + t.Program.set1_cols + t.Program.bv_cols;
        d_cap = tile_cols;
        d_bv_bits =
          List.fold_left (fun acc (a : Program.bv_alloc) -> acc + a.Program.size) 0 t.Program.bvs;
        d_bits_cap = u.Program.bv_bits_cap;
        d_has_r = has_r;
        d_has_rall = has_rall;
        d_exclusive = false;
      }
  | Program.U_lnfa _ -> invalid_arg "Mapper: LNFA units are placed through bins"

let fits (b : building) (d : demand) =
  b.b_mode = d.d_mode && b.b_cap = d.d_cap
  && b.b_bits_cap = d.d_bits_cap
  && (not b.b_exclusive) && (not d.d_exclusive)
  && b.b_cols + d.d_cols <= b.b_eff
  && b.b_bits + d.d_bv_bits <= b.b_bits_cap
  && (not (b.b_has_r && d.d_has_rall))
  && not (b.b_has_rall && d.d_has_r)

let add_to (b : building) (d : demand) piece =
  b.b_cols <- b.b_cols + d.d_cols;
  b.b_bits <- b.b_bits + d.d_bv_bits;
  b.b_has_r <- b.b_has_r || d.d_has_r;
  b.b_has_rall <- b.b_has_rall || d.d_has_rall;
  b.b_exclusive <- b.b_exclusive || d.d_exclusive;
  b.b_pieces <- piece :: b.b_pieces

let new_tile ~phys ~eff (d : demand) piece =
  {
    b_mode = d.d_mode;
    b_cap = d.d_cap;
    b_eff = eff;
    b_phys = phys;
    b_cols = d.d_cols;
    b_bits = d.d_bv_bits;
    b_bits_cap = d.d_bits_cap;
    b_has_r = d.d_has_r;
    b_has_rall = d.d_has_rall;
    b_exclusive = d.d_exclusive;
    b_pieces = [ piece ];
  }

let copy_building b =
  {
    b_mode = b.b_mode;
    b_cap = b.b_cap;
    b_eff = b.b_eff;
    b_phys = b.b_phys;
    b_cols = b.b_cols;
    b_bits = b.b_bits;
    b_bits_cap = b.b_bits_cap;
    b_has_r = b.b_has_r;
    b_has_rall = b.b_has_rall;
    b_exclusive = b.b_exclusive;
    b_pieces = b.b_pieces;
  }

(* A block: all pieces of one unit or one bin, placed atomically into one
   array. *)
type block = { demands : (demand * piece) list; tiles_ub : int }

let block_of_unit ~tile_cols units id =
  let c = units.(id) in
  let n = Program.num_tiles c.Program.kind in
  {
    demands =
      List.init n (fun i ->
          (demand_of_unit ~tile_cols c i, P_unit { unit_id = id; local_tile = i }));
    tiles_ub = n;
  }

let block_of_bin (bins : Binning.bin array) id =
  let b = bins.(id) in
  (* LNFA demands are expressed in state slots; single-tile bins are just
     a group of regions and may share a tile with other such bins *)
  let m = List.length b.Binning.members in
  let single = b.Binning.tiles = 1 in
  {
    demands =
      List.init b.Binning.tiles (fun i ->
          ( {
              d_mode = T_lnfa;
              d_cols = m * b.Binning.region_states;
              d_cap = Binning.capacity_per_tile ~single_code:b.Binning.single_code;
              d_bv_bits = 0;
              d_bits_cap = Circuit.max_bv_bits_per_tile;
              d_has_r = false;
              d_has_rall = false;
              d_exclusive = not single;
            },
            P_bin { bin_id = id; bin_tile = i } ));
    tiles_ub = b.Binning.tiles;
  }

(* Effective capacity of a slot with [usable] of the [tile_cols] nominal
   CAM columns surviving: demand capacities (which for LNFA are state
   slots, not columns) shrink proportionally. *)
let eff_cap ~tile_cols ~usable cap =
  if usable >= tile_cols then cap else cap * usable / tile_cols

(* An array under construction: free physical slots (defect-reduced) and
   built tiles, newest first. *)
type arr = {
  arr_id : int;
  mutable free : (int * int) list;  (* (phys, usable cols), ascending *)
  mutable built : building list;
}

let fresh_slots defects ~tile_cols id =
  List.filter_map
    (fun t ->
      if Defect.is_dead_tile defects ~array_id:id ~tile:t then None
      else
        let u = Defect.usable_cols defects ~array_id:id ~tile:t ~nominal:tile_cols in
        if u <= 0 then None else Some (t, u))
    (List.init Circuit.tiles_per_array Fun.id)

(* Try to place a block into an array; returns the updated (free, built)
   on success, None when the array cannot host it.  The attempt works on
   copies, so failure leaves the array intact. *)
let try_place ~tile_cols (ar_free, ar_built) block =
  let free = ref ar_free in
  let built = ref (List.map copy_building ar_built) in
  let place (d, piece) =
    let rec find = function
      | b :: rest ->
          if fits b d then begin
            add_to b d piece;
            true
          end
          else find rest
      | [] ->
          (* open the first free physical slot that can host this demand *)
          let rec take acc = function
            | [] -> false
            | (phys, usable) :: rest ->
                let eff = eff_cap ~tile_cols ~usable d.d_cap in
                if d.d_cols <= eff then begin
                  free := List.rev_append acc rest;
                  built := new_tile ~phys ~eff d piece :: !built;
                  true
                end
                else take ((phys, usable) :: acc) rest
          in
          take [] !free
    in
    find !built
  in
  if List.for_all place block.demands then Some (!free, !built) else None

let pristine_slots ~tile_cols =
  List.init Circuit.tiles_per_array (fun t -> (t, tile_cols))

let map_units_result ?(defects = Defect.none) ?(tile_cols = Circuit.tile_cam_cols)
    ~(params : Program.params) units =
  (* collect LNFA lines and bin them *)
  let lines = ref [] in
  Array.iteri
    (fun id (c : Program.compiled) ->
      match c.Program.kind with
      | Program.U_lnfa u ->
          List.iter (fun line -> lines := (id, line) :: !lines) u.Program.lines
      | Program.U_nfa _ | Program.U_nbva _ -> ())
    units;
  let bins = Array.of_list (Binning.pack ~max_bin_size:params.Program.bin_size !lines) in
  (* blocks, largest first, each knowing which sources it carries *)
  let blocks = ref [] in
  Array.iteri
    (fun id (c : Program.compiled) ->
      match c.Program.kind with
      | Program.U_lnfa _ -> ()
      | Program.U_nfa _ | Program.U_nbva _ ->
          blocks := (block_of_unit ~tile_cols units id, [ c.Program.source ]) :: !blocks)
    units;
  Array.iteri
    (fun id (b : Binning.bin) ->
      let sources =
        List.sort_uniq compare
          (List.map (fun (uid, _) -> units.(uid).Program.source) b.Binning.members)
      in
      blocks := (block_of_bin bins id, sources) :: !blocks)
    bins;
  let sorted = List.sort (fun (a, _) (b, _) -> compare b.tiles_ub a.tiles_ub) !blocks in
  let arrays : arr list ref = ref [] in
  let next_array = ref 0 in
  let drops = ref [] in
  let record sources reason =
    List.iter (fun s -> drops := Compile_error.v s reason :: !drops) sources
  in
  List.iter
    (fun (block, sources) ->
      if block.tiles_ub > Circuit.tiles_per_array then
        record sources
          (Compile_error.Oversize
             { tiles_needed = block.tiles_ub; tiles_cap = Circuit.tiles_per_array })
      else if try_place ~tile_cols (pristine_slots ~tile_cols, []) block = None then
        record sources (Compile_error.Resource_exhausted "block does not fit an empty array")
      else begin
        let rec attempt = function
          | ar :: rest -> (
              match try_place ~tile_cols (ar.free, ar.built) block with
              | Some (free, built) ->
                  ar.free <- free;
                  ar.built <- built
              | None -> attempt rest)
          | [] -> open_new ()
        and open_new () =
          if not (Defect.array_exists defects !next_array) then
            record sources
              (Compile_error.Unplaceable
                 { tiles_needed = block.tiles_ub; detail = "no surviving array can host it" })
          else begin
            let id = !next_array in
            incr next_array;
            let ar = { arr_id = id; free = fresh_slots defects ~tile_cols id; built = [] } in
            arrays := !arrays @ [ ar ];
            match try_place ~tile_cols (ar.free, ar.built) block with
            | Some (free, built) ->
                ar.free <- free;
                ar.built <- built
            | None -> open_new ()
          end
        in
        attempt !arrays
      end)
    sorted;
  let finish (b : building) = { mode = b.b_mode; phys = b.b_phys; pieces = List.rev b.b_pieces } in
  let used = List.filter (fun ar -> ar.built <> []) !arrays in
  let arrays_out =
    Array.of_list (List.map (fun ar -> Array.of_list (List.rev_map finish ar.built)) used)
  in
  let dstats =
    if Defect.is_trivial defects then no_defect_stats
    else
      List.fold_left
        (fun acc ar ->
          let acc = ref acc in
          for t = 0 to Circuit.tiles_per_array - 1 do
            if Defect.is_dead_tile defects ~array_id:ar.arr_id ~tile:t then
              acc := { !acc with dead_tiles_skipped = !acc.dead_tiles_skipped + 1 }
            else begin
              let lost, repaired = Defect.tile_loss defects ~array_id:ar.arr_id ~tile:t in
              acc :=
                {
                  !acc with
                  cols_lost = !acc.cols_lost + lost;
                  cols_repaired = !acc.cols_repaired + repaired;
                }
            end
          done;
          !acc)
        no_defect_stats used
  in
  let drops = List.rev !drops in
  if drops = [] then ({ units; bins; arrays = arrays_out }, [], dstats)
  else begin
    (* graceful degradation: keep only placed units/bins, remapping ids so
       the placement stays self-contained *)
    let unit_placed = Array.make (Array.length units) false in
    let bin_placed = Array.make (max 1 (Array.length bins)) false in
    Array.iter
      (fun tiles ->
        Array.iter
          (fun (t : placed_tile) ->
            List.iter
              (function
                | P_unit { unit_id; _ } -> unit_placed.(unit_id) <- true
                | P_bin { bin_id; _ } -> bin_placed.(bin_id) <- true)
              t.pieces)
          tiles)
      arrays_out;
    Array.iteri
      (fun id (b : Binning.bin) ->
        if bin_placed.(id) then
          List.iter (fun (uid, _) -> unit_placed.(uid) <- true) b.Binning.members)
      bins;
    let unit_map = Array.make (Array.length units) (-1) in
    let kept_units = ref [] and n = ref 0 in
    Array.iteri
      (fun id c ->
        if unit_placed.(id) then begin
          unit_map.(id) <- !n;
          incr n;
          kept_units := c :: !kept_units
        end)
      units;
    let bin_map = Array.make (max 1 (Array.length bins)) (-1) in
    let kept_bins = ref [] and nb = ref 0 in
    Array.iteri
      (fun id b ->
        if bin_placed.(id) then begin
          bin_map.(id) <- !nb;
          incr nb;
          kept_bins := b :: !kept_bins
        end)
      bins;
    let remap = function
      | P_unit { unit_id; local_tile } -> P_unit { unit_id = unit_map.(unit_id); local_tile }
      | P_bin { bin_id; bin_tile } -> P_bin { bin_id = bin_map.(bin_id); bin_tile }
    in
    let arrays_out =
      Array.map
        (Array.map (fun t -> { t with pieces = List.map remap t.pieces }))
        arrays_out
    in
    ( {
        units = Array.of_list (List.rev !kept_units);
        bins = Array.of_list (List.rev !kept_bins);
        arrays = arrays_out;
      },
      drops,
      dstats )
  end

let map_units ?(tile_cols = Circuit.tile_cam_cols) ~(params : Program.params) units =
  (* historical exception contract: oversize units raise *)
  Array.iteri
    (fun id (c : Program.compiled) ->
      match c.Program.kind with
      | Program.U_lnfa _ -> ()
      | k ->
          let n = Program.num_tiles k in
          if n > Circuit.tiles_per_array then
            invalid_arg
              (Printf.sprintf "Mapper: unit %d (%s) needs %d tiles, exceeding one array" id
                 c.Program.source n))
    units;
  match map_units_result ~defects:Defect.none ~tile_cols ~params units with
  | p, [], _ -> p
  | _, _ :: _, _ -> invalid_arg "Mapper: block does not fit an empty array"

let array_of_unit p id =
  let found = ref None in
  Array.iteri
    (fun ai tiles ->
      if !found = None then
        Array.iter
          (fun t ->
            List.iter
              (function
                | P_unit { unit_id; _ } when unit_id = id -> found := Some ai
                | P_unit _ | P_bin _ -> ())
              t.pieces)
          tiles)
    p.arrays;
  !found

type stats = {
  num_arrays : int;
  num_tiles : int;
  cols_used : int;
  col_utilisation : float;
  tile_utilisation : float;
}

let stats p =
  let tiles = ref 0 and cols = ref 0 in
  Array.iter
    (fun arr ->
      tiles := !tiles + Array.length arr;
      Array.iter
        (fun t ->
          List.iter
            (fun piece ->
              match piece with
              | P_unit { unit_id; local_tile } ->
                  cols := !cols + Program.cols_of_tile p.units.(unit_id).Program.kind local_tile
              | P_bin { bin_id; bin_tile } ->
                  let b = p.bins.(bin_id) in
                  let per_state = if b.Binning.single_code then 1 else 2 in
                  (* states actually stored in this bin tile *)
                  let lo = bin_tile * b.Binning.region_states in
                  List.iter
                    (fun (_, l) ->
                      let len = Array.length l.Program.labels in
                      let here = max 0 (min b.Binning.region_states (len - lo)) in
                      cols := !cols + (per_state * here))
                    b.Binning.members)
            t.pieces)
        arr)
    p.arrays;
  let num_arrays = Array.length p.arrays in
  {
    num_arrays;
    num_tiles = !tiles;
    cols_used = !cols;
    col_utilisation =
      (if !tiles = 0 then 1.
       else float_of_int !cols /. float_of_int (!tiles * Circuit.tile_cam_cols));
    tile_utilisation =
      (if num_arrays = 0 then 1.
       else float_of_int !tiles /. float_of_int (num_arrays * Circuit.tiles_per_array));
  }

let pp_stats fmt s =
  Format.fprintf fmt "arrays=%d tiles=%d cols=%d col-util=%.1f%% tile-util=%.1f%%" s.num_arrays
    s.num_tiles s.cols_used (100. *. s.col_utilisation) (100. *. s.tile_utilisation)

let pp_defect_stats fmt d =
  Format.fprintf fmt "dead-tiles=%d cols-lost=%d cols-repaired=%d" d.dead_tiles_skipped
    d.cols_lost d.cols_repaired

let pp_placement fmt p =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun ai tiles ->
      Format.fprintf fmt "array %d (%d tiles):@," ai (Array.length tiles);
      Array.iter
        (fun (t : placed_tile) ->
          let mode =
            match t.mode with T_nfa -> "NFA " | T_nbva -> "NBVA" | T_lnfa -> "LNFA"
          in
          let pieces =
            List.map
              (fun piece ->
                match piece with
                | P_unit { unit_id; local_tile } ->
                    Printf.sprintf "u%d.%d(%s)" unit_id local_tile
                      (let src = p.units.(unit_id).Program.source in
                       if String.length src > 18 then String.sub src 0 18 ^ ".." else src)
                | P_bin { bin_id; bin_tile } ->
                    let b = p.bins.(bin_id) in
                    Printf.sprintf "bin%d.%d(%d lines)" bin_id bin_tile
                      (List.length b.Binning.members))
              t.pieces
          in
          Format.fprintf fmt "  tile %2d [%s] %s@," t.phys mode (String.concat " " pieces))
        tiles)
    p.arrays;
  Format.fprintf fmt "%a@]" pp_stats (stats p)
