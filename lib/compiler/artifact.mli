(** Framed, CRC-guarded binary artifacts.

    The common on-disk envelope shared by every persistent artifact in
    the stack (run checkpoints, the compiled-placement cache), all
    integers little-endian:

    {v
      magic      consumer-chosen tag, fixed length
      version    1 byte
      crc32      4 bytes, over the payload only
      length     8 bytes, payload byte count
      payload    length bytes
    v}

    Writes go to a temp name and are [rename]d into place, so a crash
    mid-write leaves the previous artifact intact; the version byte and
    CRC-32 make torn, bit-rotted or stale-format files detectable at
    load instead of being deserialized as garbage.  Consumers own the
    payload codec and the error policy: this module reports problems as
    [Sys_error] (filesystem) or [Error detail] strings (framing). *)

val crc32 : string -> int
(** CRC-32, reflected, polynomial [0xEDB88320] (zlib/POSIX cksum). *)

val frame : magic:string -> version:int -> string -> string
(** Envelope a payload: header followed by the payload bytes. *)

val unframe : magic:string -> version:int -> string -> (string, string) result
(** Check and strip the envelope; [Error detail] on truncation, magic,
    version or CRC mismatch. *)

val fsync_dir : string -> unit
(** Fsync a directory fd so a just-renamed entry survives a power cut —
    rename gives atomicity, only the directory fsync gives durability.
    Best-effort: filesystems that reject directory fsync are ignored. *)

val write : path:string -> string -> unit
(** Durable atomic raw write (no envelope): write-temp + fsync + rename
    + {!fsync_dir}.  For consumers with their own format — e.g. JSON
    metrics files — that still want crash-safe replacement. *)

val save : path:string -> magic:string -> version:int -> string -> unit
(** [frame] then write-temp + fsync + rename + {!fsync_dir}.  Raises
    [Sys_error] on filesystem failure (the containing directory must
    exist). *)

val load : path:string -> magic:string -> version:int -> (string option, string) result
(** [Ok None] when [path] does not exist; otherwise read and [unframe].
    Filesystem read failures surface as [Error ("unreadable: ...")]. *)
