type reason =
  | Parse_error of string
  | Unsupported of string
  | Oversize of { tiles_needed : int; tiles_cap : int }
  | Resource_exhausted of string
  | Unplaceable of { tiles_needed : int; detail : string }

type t = { source : string; reason : reason }

let v source reason = { source; reason }

let reason_label = function
  | Parse_error _ -> "parse-error"
  | Unsupported _ -> "unsupported"
  | Oversize _ -> "oversize"
  | Resource_exhausted _ -> "resource-exhausted"
  | Unplaceable _ -> "unplaceable"

let message t =
  match t.reason with
  | Parse_error msg -> "parse error: " ^ msg
  | Unsupported msg -> "unsupported: " ^ msg
  | Oversize { tiles_needed; tiles_cap } ->
      Printf.sprintf "oversize: needs %d tiles, ceiling is %d" tiles_needed tiles_cap
  | Resource_exhausted msg -> "resource exhausted: " ^ msg
  | Unplaceable { tiles_needed; detail } ->
      Printf.sprintf "unplaceable on defective chip (%d tiles): %s" tiles_needed detail

let pp fmt t = Format.fprintf fmt "%s: %s" t.source (message t)
