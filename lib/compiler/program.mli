(** Hardware-configuration IR: what the compiler hands to the mapper and
    the mapper hands to the simulator.

    A {e unit} is one regex compiled for one execution mode, with its
    resource demand broken down per tile.  Tiles inside a unit are indexed
    [0 .. tiles-1] (unit-local); the mapper later assigns unit-local tiles
    to physical tiles of an array. *)

type params = {
  unfold_threshold : int;
      (** Bounded repetitions with a finite bound below this are unfolded
          into plain states (§4.1). *)
  bv_depth : int;  (** Rows per BV word column (DSE parameter, Fig 10a). *)
  bin_size : int;  (** Max LNFAs per bin (DSE parameter, Fig 10b). *)
  lnfa_max_blowup : float;
      (** LNFA rewriting may grow the state count at most this factor over
          the Glushkov size (§4.2 uses 2.0). *)
  dfa_state_budget : int;
      (** Software-simulator cost model: a placement is lazy-DFA eligible
          when its execution automaton carries no BV-STEs and has at most
          this many states (the per-pattern DFA/NFA choice of arXiv
          2210.10077 — small NFAs determinise without blowup and win on
          per-symbol work; large or counter-carrying ones do not). *)
  dfa_cache_states : int;
      (** Bound on lazily-built DFA states cached per placement before
          the cache flushes (and eventually falls back to NFA stepping). *)
}

val default_params : params
(** threshold 8, depth 8, bin 8, blowup 2.0 — overridden per benchmark by
    the design-space exploration. *)

(** {1 NFA units} *)

type nfa_unit = {
  nfa : Nfa.t;
  tile_of_state : int array;  (** state -> unit-local tile. *)
  tile_states : int array;  (** #STEs in each tile. *)
  tile_cols : int array;  (** CAM columns used in each tile. *)
  cross_edges : (int * int) list;  (** Edges crossing tile boundaries. *)
}

(** {1 NBVA units} *)

type bv_alloc = {
  ste : int;  (** NBVA state index. *)
  size : int;  (** Bits. *)
  width : int;  (** Columns = ceil(size / depth). *)
  read : Nbva.read_action;
}

type nbva_tile = {
  states : int list;  (** NBVA state indices mapped here. *)
  cc_cols : int;  (** Columns storing character-class codes. *)
  set1_cols : int;  (** Initial-vector columns (one per BV-STE entered). *)
  bv_cols : int;  (** Columns storing BV words. *)
  bvs : bv_alloc list;
}

type nbva_unit = {
  nbva : Nbva.t;
  depth : int;
  ntiles : nbva_tile array;
  tile_of_state : int array;
  cross_edges : (int * int) list;
  bv_bits_cap : int;
      (** Per-tile BV storage budget of the target design: 4064 bits on
          RAP (CAM columns), the BVM slot capacity on BVAP.  The mapper
          honours it when sharing tiles between units. *)
}

(** {1 LNFA units} *)

type lnfa_line = {
  labels : Charclass.t array;
  single_code : bool;
      (** Every class fits one 32-bit multi-zero-prefix code: the line can
          use the CAM path (1 CAM column per state); otherwise it uses the
          one-hot local-switch path (2 switch columns per state). *)
}

type lnfa_unit = { lines : lnfa_line list; states : int }

type unit_kind = U_nfa of nfa_unit | U_nbva of nbva_unit | U_lnfa of lnfa_unit

type exec_hint =
  | H_default
      (** Generic stepping (bit-parallel NFA/NBVA kernel, single-word
          specialization when the automaton fits one word). *)
  | H_dfa of { dfa_cache_states : int }
      (** The software simulator should attach a lazy-DFA transition
          cache of at most [dfa_cache_states] states to this placement
          ({!Mode_select.decide_exec} cost model).  Purely an execution
          strategy: semantics, reports and projections are identical,
          and hardware models ignore it. *)

type compiled = {
  source : string;  (** Concrete syntax, for reports. *)
  ast : Ast.t;
  kind : unit_kind;
  hint : exec_hint;  (** Simulator stepper choice; derived, not semantic. *)
}

val hint_name : exec_hint -> string

(** {1 Resource queries} *)

val mode_name : unit_kind -> string
val num_tiles : unit_kind -> int
(** Unit-local tile count ({b before} binning: an LNFA unit reports the
    unbinned demand [ceil(states/capacity)]). *)

val num_states : unit_kind -> int
val cols_of_tile : unit_kind -> int -> int
(** Columns used by unit-local tile [i]. *)

val pp_compiled : Format.formatter -> compiled -> unit
