(* See program_cache.mli. *)

let magic = "RAPPROG"

(* Bump whenever any type reachable from [entry] changes layout: the
   version byte in the Artifact envelope is the only thing standing
   between an old artifact and Marshal reading it as garbage.
   v2: Nbva exec plans became flat packed mask tables, Bitvec grew a
   slice representation.
   v3: the compiler version moved out of the marshalled entry into a
   plain length-prefixed prefix of the payload, so it is checked
   BEFORE Marshal touches any bytes — Marshal is not cross-version
   stable, and probing a foreign-version artifact with it risks a
   crash rather than a clean [Invalid].
   v4: [Program.compiled] grew the [hint] execution-strategy field and
   [Program.params] grew the DFA budgets ([dfa_state_budget],
   [dfa_cache_states]). *)
let version = 4

type entry = {
  e_key : string;
  e_placement : Mapper.placement;
  e_errors : Compile_error.t list;
}

type lookup_result =
  | Hit of Mapper.placement * Compile_error.t list
  | Miss
  | Invalid of string

let key ~arch_tag ~params_tag ~sources =
  let b = Buffer.create 256 in
  Buffer.add_string b arch_tag;
  Buffer.add_char b '\000';
  Buffer.add_string b params_tag;
  Buffer.add_char b '\000';
  List.iter
    (fun s ->
      Buffer.add_string b s;
      Buffer.add_char b '\001')
    sources;
  Digest.to_hex (Digest.string (Buffer.contents b))

let path ~dir ~key = Filename.concat dir (Printf.sprintf "rap-%s.prog" key)

(* Payload layout (v3): a 4-byte LE length, [Sys.ocaml_version] as plain
   bytes, then the marshalled [entry].  The prefix needs no Marshal to
   read, so the version gate runs on bytes Marshal never sees. *)
let store ~dir ~key placement errors =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let b = Buffer.create 4096 in
    let ver = Sys.ocaml_version in
    let n = String.length ver in
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((n lsr (8 * i)) land 0xFF))
    done;
    Buffer.add_string b ver;
    Buffer.add_string b
      (Marshal.to_string { e_key = key; e_placement = placement; e_errors = errors } []);
    Artifact.save ~path:(path ~dir ~key) ~magic ~version (Buffer.contents b)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let lookup ~dir ~key =
  match Artifact.load ~path:(path ~dir ~key) ~magic ~version with
  | Ok None -> Miss
  | Error detail -> Invalid detail
  | Ok (Some payload) ->
      if String.length payload < 4 then Invalid "truncated version prefix"
      else begin
        let n = ref 0 in
        for i = 3 downto 0 do
          n := (!n lsl 8) lor Char.code payload.[i]
        done;
        let n = !n in
        if n < 0 || 4 + n > String.length payload then Invalid "truncated version prefix"
        else begin
          let ocaml = String.sub payload 4 n in
          if ocaml <> Sys.ocaml_version then
            Invalid (Printf.sprintf "built by OCaml %s, this is %s" ocaml Sys.ocaml_version)
          else
            match (Marshal.from_string payload (4 + n) : entry) with
            | exception Failure msg -> Invalid ("unmarshalable payload: " ^ msg)
            | e ->
                if e.e_key <> key then Invalid "key mismatch (artifact renamed or collided)"
                else Hit (e.e_placement, e.e_errors)
        end
      end
