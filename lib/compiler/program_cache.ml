(* See program_cache.mli. *)

let magic = "RAPPROG"

(* Bump whenever any type reachable from [entry] changes layout: the
   version byte in the Artifact envelope is the only thing standing
   between an old artifact and Marshal reading it as garbage.
   v2: Nbva exec plans became flat packed mask tables, Bitvec grew a
   slice representation. *)
let version = 2

type entry = {
  e_key : string;
  e_ocaml : string;  (* Sys.ocaml_version — Marshal is not cross-version stable *)
  e_placement : Mapper.placement;
  e_errors : Compile_error.t list;
}

type lookup_result =
  | Hit of Mapper.placement * Compile_error.t list
  | Miss
  | Invalid of string

let key ~arch_tag ~params_tag ~sources =
  let b = Buffer.create 256 in
  Buffer.add_string b arch_tag;
  Buffer.add_char b '\000';
  Buffer.add_string b params_tag;
  Buffer.add_char b '\000';
  List.iter
    (fun s ->
      Buffer.add_string b s;
      Buffer.add_char b '\001')
    sources;
  Digest.to_hex (Digest.string (Buffer.contents b))

let path ~dir ~key = Filename.concat dir (Printf.sprintf "rap-%s.prog" key)

let store ~dir ~key placement errors =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let payload =
      Marshal.to_string
        { e_key = key; e_ocaml = Sys.ocaml_version; e_placement = placement; e_errors = errors }
        []
    in
    Artifact.save ~path:(path ~dir ~key) ~magic ~version payload
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let lookup ~dir ~key =
  match Artifact.load ~path:(path ~dir ~key) ~magic ~version with
  | Ok None -> Miss
  | Error detail -> Invalid detail
  | Ok (Some payload) -> (
      match (Marshal.from_string payload 0 : entry) with
      | exception Failure msg -> Invalid ("unmarshalable payload: " ^ msg)
      | e ->
          if e.e_ocaml <> Sys.ocaml_version then
            Invalid
              (Printf.sprintf "built by OCaml %s, this is %s" e.e_ocaml Sys.ocaml_version)
          else if e.e_key <> key then Invalid "key mismatch (artifact renamed or collided)"
          else Hit (e.e_placement, e.e_errors))
