(** Structured per-regex compilation and placement failures.

    The pipeline degrades gracefully: a rule set with some uncompilable or
    unplaceable regexes still runs, and callers receive one [t] per
    dropped regex saying exactly what was dropped and why — instead of the
    historical [Invalid_argument] plumbing that forced string matching on
    exception messages. *)

type reason =
  | Parse_error of string  (** The source text is not a valid regex. *)
  | Unsupported of string
      (** A construct no backend of the target architecture implements. *)
  | Oversize of { tiles_needed : int; tiles_cap : int }
      (** The unit alone exceeds the architecture's placement ceiling
          (one array). *)
  | Resource_exhausted of string
      (** The (defect-free) chip ran out of arrays/tiles for this unit. *)
  | Unplaceable of { tiles_needed : int; detail : string }
      (** Defect-induced: the unit fits a pristine array but no surviving
          array of the sampled chip can host it. *)

type t = { source : string; reason : reason }

val v : string -> reason -> t
val reason_label : reason -> string
(** Short stable tag: ["parse-error"], ["unsupported"], ["oversize"],
    ["resource-exhausted"], ["unplaceable"]. *)

val message : t -> string
(** One-line human-readable description (without the source). *)

val pp : Format.formatter -> t -> unit
