(** Permanent-defect map of a manufactured chip.

    RAP stores state in 8T-SRAM CAM cells and crossbar switches — exactly
    the structures where stuck-at defects dominate in-memory designs.  A
    [t] describes one sampled chip: dead tiles, stuck CAM columns
    (column granularity, the cell array's repair unit) and stuck crossbar
    switch rows, keyed by (array, tile, column/row).

    The paper keeps {e spare CAM columns} next to the NBVA bit-vector
    columns; [spare_cols] models that pool per tile: up to that many stuck
    CAM columns are repaired for free.  Stuck switch rows are not
    CAM-repairable and always cost a column of capacity.

    [none] is the pristine unbounded chip — the defect-free mapper path is
    bit-identical to mapping without a defect map at all. *)

type t

val none : t
(** Pristine chip, unbounded number of arrays, no defects. *)

val create :
  ?chip_arrays:int ->
  ?spare_cols:int ->
  ?dead_tiles:(int * int) list ->
  ?stuck_cam_cols:(int * int * int) list ->
  ?stuck_switch_rows:(int * int * int) list ->
  unit ->
  t
(** [chip_arrays] bounds the physical arrays available to the mapper
    (default: unbounded); sites are [(array, tile)] resp.
    [(array, tile, column)] / [(array, tile, row)].  [spare_cols] defaults
    to {!default_spare_cols}. *)

val default_spare_cols : int

val is_trivial : t -> bool
(** No defects and no array bound: mapping behaves exactly as pristine. *)

val chip_arrays : t -> int option
val spare_cols : t -> int
val array_exists : t -> int -> bool
(** Whether physical array [i] exists on this chip. *)

val is_dead_tile : t -> array_id:int -> tile:int -> bool

val tile_loss : t -> array_id:int -> tile:int -> int * int
(** [(lost, repaired)] columns for this tile: stuck CAM columns beyond the
    spare pool plus stuck switch rows are [lost]; CAM columns covered by
    spares are [repaired]. *)

val usable_cols : t -> array_id:int -> tile:int -> nominal:int -> int
(** [nominal] minus unrepaired losses, clamped at 0 (0 for dead tiles). *)

val pp : Format.formatter -> t -> unit
