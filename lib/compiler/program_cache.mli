(** Compiled-placement cache.

    Compiling a rule set — parsing, rewriting, Glushkov/NBVA
    construction, mode selection, binning, mapping, and the bit-parallel
    mask tables — is pure in its inputs: the regex sources, the
    compilation parameters, and the target architecture.  This cache
    marshals the finished {!Mapper.placement} (plus the structured
    compile errors that accompanied it) to a versioned, CRC-guarded
    {!Artifact} keyed by a digest of exactly those inputs, so repeat
    runs and every stream of a batch skip compilation entirely.

    The artifact payload is a plain length-prefixed [Sys.ocaml_version]
    string followed by an OCaml [Marshal] image.  Everything reachable
    from a placement is pure data (bit vectors, int arrays, character
    classes — no closures), and [Marshal] preserves physical sharing,
    so the hash-consed NBVA mask tables stay shared on disk and after a
    load.  Guards, in order, at {!lookup}: envelope magic + version +
    CRC (see {!Artifact}), the OCaml compiler version, and the embedded
    key (catches renamed or colliding files).  The compiler-version
    gate runs {e before} [Marshal.from_string] ever sees the payload:
    Marshal images are not cross-version stable, and probing a
    foreign-version image can crash rather than fail cleanly.  Any
    mismatch is an {!Invalid} — the caller falls back to a cold compile
    and may overwrite the artifact.

    Lives in the compiler library, below the simulator: callers that key
    on an architecture pass an opaque [arch_tag] digest. *)

val version : int
(** Envelope format version; bumped whenever any type reachable from the
    marshalled entry changes layout.  Tests that forge artifacts use it
    to stamp envelopes that pass the envelope check. *)

val key : arch_tag:string -> params_tag:string -> sources:string list -> string
(** Cache key: hex digest over the architecture tag, the compile-params
    tag and the regex sources (order-sensitive — placements are). *)

val path : dir:string -> key:string -> string
(** The artifact file backing [key] inside [dir]. *)

val store :
  dir:string -> key:string -> Mapper.placement -> Compile_error.t list -> (unit, string) result
(** Persist a placement (creating [dir] when missing); write-temp +
    rename, so concurrent readers never see a torn artifact.  Errors are
    returned, not raised — a failed store only loses the warm start. *)

type lookup_result =
  | Hit of Mapper.placement * Compile_error.t list
  | Miss  (** No artifact for this key. *)
  | Invalid of string  (** Artifact rejected; detail says why. *)

val lookup : dir:string -> key:string -> lookup_result
