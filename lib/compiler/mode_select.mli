(** Mode decision graph (paper Fig 9) and per-regex compilation driver.

    The decision, per regex:
    + If it carries a bounded repetition that survives the unfolding
      rewriting (a single-class repetition with a bound at or above the
      unfolding threshold), it benefits from bit vectors: {b NBVA} mode.
    + Otherwise, if it rewrites into lines within the 2x state budget
      (§4.2): {b LNFA} mode.
    + Otherwise: {b NFA} mode.

    [compile_as] bypasses the decision to force a mode — the mode-vs-mode
    comparisons of Tables 2 and 3 run the same regexes in both their chosen
    mode and NFA mode. *)

type mode = Nfa_mode | Nbva_mode | Lnfa_mode

val mode_names : mode -> string
val decide : params:Program.params -> Ast.t -> mode

val decide_exec : params:Program.params -> Ast.t -> Program.exec_hint
(** Software-stepper cost model (orthogonal to the hardware mode): picks
    the lazy-DFA fast path when the execution automaton the simulator
    will run has no BV-STEs and at most [params.dfa_state_budget] states
    — the per-pattern DFA-vs-NFA decision of arXiv 2210.10077.  Every
    {!compile_as} result carries its verdict as [compiled.hint]. *)

val compile : params:Program.params -> source:string -> Ast.t -> Program.compiled
(** Decide, then compile with the matching backend. *)

val compile_as :
  mode -> params:Program.params -> source:string -> Ast.t -> Program.compiled option
(** [None] when the regex cannot be executed in the requested mode (e.g.
    LNFA requested for a non-linearisable regex). NFA mode always
    succeeds. *)

val compile_result :
  params:Program.params -> source:string -> Ast.t -> (Program.compiled, Compile_error.t) result
(** Non-raising {!compile}: backend failures surface as structured
    {!Compile_error.t} values instead of [Invalid_argument]. *)

val parse_and_compile :
  params:Program.params -> string -> (Program.compiled, Compile_error.t) result
(** Convenience: parse then [compile], with parse failures reported as
    [Compile_error.Parse_error]. *)
