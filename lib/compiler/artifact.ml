(* See artifact.mli. *)

(* ---- CRC-32 (reflected, poly 0xEDB88320 — the zlib/POSIX cksum one) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* ---- framing ---- *)

let frame ~magic ~version payload =
  let b = Buffer.create (String.length magic + 13 + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (version land 0xFF));
  let crc = crc32 payload in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  let len = Int64.of_int (String.length payload) in
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical len (8 * i)) land 0xFF))
  done;
  Buffer.add_string b payload;
  Buffer.contents b

let unframe ~magic ~version raw =
  let ml = String.length magic in
  let header_len = ml + 1 + 4 + 8 in
  if String.length raw < header_len then Error "shorter than the header"
  else if String.sub raw 0 ml <> magic then Error "bad magic"
  else
    let v = Char.code raw.[ml] in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else begin
      let byte at = Char.code raw.[at] in
      let crc = ref 0 in
      for i = 0 to 3 do
        crc := !crc lor (byte (ml + 1 + i) lsl (8 * i))
      done;
      let len = ref 0L in
      for i = 0 to 7 do
        len := Int64.logor !len (Int64.shift_left (Int64.of_int (byte (ml + 5 + i))) (8 * i))
      done;
      let len = Int64.to_int !len in
      if len < 0 || header_len + len <> String.length raw then Error "payload length mismatch"
      else
        let payload = String.sub raw header_len len in
        if crc32 payload <> !crc then Error "CRC mismatch" else Ok payload
    end

(* ---- filesystem ---- *)

(* Flush a directory's entry table to stable storage.  rename() makes an
   artifact visible to other processes, but the new directory entry
   itself lives in the page cache until the *directory* is fsynced — on
   a power cut right after the rename, some filesystems recover with the
   old entry (or none).  Durability failures are deliberately swallowed:
   a filesystem that rejects fsync on a directory fd (some network
   mounts) still gets the rename's atomicity, just not its durability,
   and callers treat both the same way they always did. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc data;
      flush oc;
      (* the data must be durable before the rename commits it: renaming
         an unsynced temp file can leave a zero-length artifact after a
         crash, which the CRC would catch but durability should prevent *)
      try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  (* the rename is the commit point: readers only ever see the previous
     complete artifact or this one, never a torn write *)
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let save ~path ~magic ~version payload = write ~path (frame ~magic ~version payload)

let load ~path ~magic ~version =
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error ("unreadable: " ^ msg)
    | raw -> ( match unframe ~magic ~version raw with Ok p -> Ok (Some p) | Error e -> Error e)
