(** Greedy hardware mapping (paper §4.3), optionally defect-aware.

    The mapper packs at {e tile-piece} granularity: every compiled unit
    (and every LNFA bin) contributes a sequence of tile pieces; pieces of
    different units may share a physical tile when the mode and resource
    constraints allow, and all pieces of one unit land in one array
    (inter-array communication does not exist, §3.3).  Blocks are placed
    first-fit-decreasing by tile demand.

    Sharing rules per mode:
    {ul
    {- NFA pieces share by columns;}
    {- NBVA pieces share by columns and BV bits, and never mix [r(n)] with
       [rAll] reads in one tile;}
    {- LNFA bins own their tiles (the region layout is bin-wide).}}

    With a {!Defect.t} map ({!map_units_result}) placement becomes
    defect-aware: dead tiles are skipped, stuck CAM columns shrink a
    tile's effective capacity after spare-column repair, and blocks that
    no surviving array can host are dropped with a structured
    {!Compile_error.t} instead of aborting the whole rule set.

    The paper reports >90% utilisation from its grouping mapper; {!stats}
    exposes the same measure. *)

type piece =
  | P_unit of { unit_id : int; local_tile : int }
  | P_bin of { bin_id : int; bin_tile : int }

type tile_mode = T_nfa | T_nbva | T_lnfa

type placed_tile = {
  mode : tile_mode;
  phys : int;  (** Physical tile index within the array (defects skip slots). *)
  pieces : piece list;
}

type placement = {
  units : Program.compiled array;
  bins : Binning.bin array;
  arrays : placed_tile array array;  (** Each inner array has <= 16 tiles. *)
}

type defect_stats = {
  dead_tiles_skipped : int;  (** Dead tiles inside arrays the placement uses. *)
  cols_lost : int;  (** Unrepaired stuck columns (CAM beyond spares + switch rows). *)
  cols_repaired : int;  (** Stuck CAM columns repaired from the spare pool. *)
}

val no_defect_stats : defect_stats

val map_units :
  ?tile_cols:int -> params:Program.params -> Program.compiled array -> placement
(** [tile_cols] (default 128) is the column capacity of a tile — the CA
    baseline maps onto 256-column tiles.  Raises [Invalid_argument] when
    some unit alone exceeds one array (historical contract; prefer
    {!map_units_result}). *)

val map_units_result :
  ?defects:Defect.t ->
  ?tile_cols:int ->
  params:Program.params ->
  Program.compiled array ->
  placement * Compile_error.t list * defect_stats
(** Defect-aware, non-raising mapping.  Unplaceable blocks are dropped and
    reported (one error per affected source regex); the returned placement
    contains only placed units and bins, reindexed.  With [Defect.none]
    and no drops the placement is identical to {!map_units}'s.  An LNFA
    regex whose lines spread over several bins may be partially placed
    when one of its bins is dropped; it is then reported dropped while its
    surviving lines still match. *)

val array_of_unit : placement -> int -> int option
(** Which array hosts the unit (None for LNFA units, whose lines live in
    bins possibly across arrays). *)

(** {1 Reporting} *)

type stats = {
  num_arrays : int;
  num_tiles : int;
  cols_used : int;
  col_utilisation : float;  (** cols used / (tiles * tile capacity). *)
  tile_utilisation : float;  (** tiles used / (arrays * 16). *)
}

val stats : placement -> stats
val pp_stats : Format.formatter -> stats -> unit
val pp_defect_stats : Format.formatter -> defect_stats -> unit

val pp_placement : Format.formatter -> placement -> unit
(** Human-readable floorplan: one line per tile with its mode, occupancy
    and the units/bins whose pieces it hosts. *)
