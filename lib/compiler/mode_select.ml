type mode = Nfa_mode | Nbva_mode | Lnfa_mode

let mode_names = function Nfa_mode -> "NFA" | Nbva_mode -> "NBVA" | Lnfa_mode -> "LNFA"

let decide ~(params : Program.params) r =
  let after_unfold = Rewrite.unfold_for_nbva ~threshold:params.Program.unfold_threshold r in
  if Ast.has_bounded_repetition after_unfold then Nbva_mode
  else
    match Lnfa_compile.try_compile ~params r with
    | Some _ -> Lnfa_mode
    | None -> Nfa_mode

(* DFA eligibility (the per-pattern DFA/NFA cost model of arXiv
   2210.10077): determinising pays off exactly when the execution
   automaton the engine will actually run — compiled at the engine's own
   unfold threshold, which differs from the mode-decision threshold — is
   small and carries no BV-STEs.  BV vectors are per-run mutable state,
   not a function of the active set, so counter-carrying placements can
   never determinise; large NFAs risk subset blowup and would thrash the
   bounded cache.  The hint is advisory: the engine re-checks structural
   eligibility against the automaton it builds. *)
let decide_exec ~(params : Program.params) r =
  match Nbva.compile ~threshold:2 r with
  | exec ->
      if Nbva.num_bv_stes exec = 0 && Nbva.num_states exec <= params.Program.dfa_state_budget
      then Program.H_dfa { dfa_cache_states = params.Program.dfa_cache_states }
      else Program.H_default
  | exception Invalid_argument _ -> Program.H_default

let compile_as mode ~params ~source r =
  let hint = decide_exec ~params r in
  match mode with
  | Nfa_mode ->
      Some { Program.source; ast = r; kind = Program.U_nfa (Nfa_compile.compile r); hint }
  | Nbva_mode ->
      Some { Program.source; ast = r; kind = Program.U_nbva (Nbva_compile.compile ~params r); hint }
  | Lnfa_mode ->
      Option.map
        (fun u -> { Program.source; ast = r; kind = Program.U_lnfa u; hint })
        (Lnfa_compile.try_compile ~params r)

let compile ~params ~source r =
  match compile_as (decide ~params r) ~params ~source r with
  | Some c -> c
  | None -> (* the decision graph only picks feasible modes *) assert false

let compile_result ~params ~source r =
  (* the decision graph only picks feasible modes; a residual
     [Invalid_argument] from a backend means the construct is beyond what
     the target implements *)
  match compile ~params ~source r with
  | c -> Ok c
  | exception Invalid_argument msg -> Error (Compile_error.v source (Compile_error.Unsupported msg))

let parse_and_compile ~params s =
  match Parser.parse_result s with
  | Error e -> Error (Compile_error.v s (Compile_error.Parse_error e))
  | Ok p -> compile_result ~params ~source:s p.Parser.ast
