type mode = Nfa_mode | Nbva_mode | Lnfa_mode

let mode_names = function Nfa_mode -> "NFA" | Nbva_mode -> "NBVA" | Lnfa_mode -> "LNFA"

let decide ~(params : Program.params) r =
  let after_unfold = Rewrite.unfold_for_nbva ~threshold:params.Program.unfold_threshold r in
  if Ast.has_bounded_repetition after_unfold then Nbva_mode
  else
    match Lnfa_compile.try_compile ~params r with
    | Some _ -> Lnfa_mode
    | None -> Nfa_mode

let compile_as mode ~params ~source r =
  match mode with
  | Nfa_mode -> Some { Program.source; ast = r; kind = Program.U_nfa (Nfa_compile.compile r) }
  | Nbva_mode ->
      Some { Program.source; ast = r; kind = Program.U_nbva (Nbva_compile.compile ~params r) }
  | Lnfa_mode ->
      Option.map
        (fun u -> { Program.source; ast = r; kind = Program.U_lnfa u })
        (Lnfa_compile.try_compile ~params r)

let compile ~params ~source r =
  match compile_as (decide ~params r) ~params ~source r with
  | Some c -> c
  | None -> (* the decision graph only picks feasible modes *) assert false

let compile_result ~params ~source r =
  (* the decision graph only picks feasible modes; a residual
     [Invalid_argument] from a backend means the construct is beyond what
     the target implements *)
  match compile ~params ~source r with
  | c -> Ok c
  | exception Invalid_argument msg -> Error (Compile_error.v source (Compile_error.Unsupported msg))

let parse_and_compile ~params s =
  match Parser.parse_result s with
  | Error e -> Error (Compile_error.v s (Compile_error.Parse_error e))
  | Ok p -> compile_result ~params ~source:s p.Parser.ast
