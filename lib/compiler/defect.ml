type t = {
  chip_arrays : int option;
  spare_cols : int;
  dead : (int * int, unit) Hashtbl.t;
  stuck_cam : (int * int, int) Hashtbl.t;  (* (array, tile) -> stuck CAM columns *)
  stuck_switch : (int * int, int) Hashtbl.t;  (* (array, tile) -> stuck switch rows *)
  trivial : bool;
}

let default_spare_cols = 4

let none =
  {
    chip_arrays = None;
    spare_cols = default_spare_cols;
    dead = Hashtbl.create 1;
    stuck_cam = Hashtbl.create 1;
    stuck_switch = Hashtbl.create 1;
    trivial = true;
  }

let create ?chip_arrays ?(spare_cols = default_spare_cols) ?(dead_tiles = [])
    ?(stuck_cam_cols = []) ?(stuck_switch_rows = []) () =
  let dead = Hashtbl.create 16 in
  List.iter (fun (a, t) -> Hashtbl.replace dead (a, t) ()) dead_tiles;
  (* count distinct stuck sites per tile; a column listed twice is one
     defect *)
  let count sites =
    let seen = Hashtbl.create 64 and per_tile = Hashtbl.create 16 in
    List.iter
      (fun (a, t, c) ->
        if not (Hashtbl.mem seen (a, t, c)) then begin
          Hashtbl.replace seen (a, t, c) ();
          let k = (a, t) in
          Hashtbl.replace per_tile k (1 + Option.value ~default:0 (Hashtbl.find_opt per_tile k))
        end)
      sites;
    per_tile
  in
  {
    chip_arrays;
    spare_cols;
    dead;
    stuck_cam = count stuck_cam_cols;
    stuck_switch = count stuck_switch_rows;
    trivial =
      chip_arrays = None && dead_tiles = [] && stuck_cam_cols = [] && stuck_switch_rows = [];
  }

let is_trivial t = t.trivial
let chip_arrays t = t.chip_arrays
let spare_cols t = t.spare_cols

let array_exists t i =
  match t.chip_arrays with None -> true | Some n -> i < n

let is_dead_tile t ~array_id ~tile = Hashtbl.mem t.dead (array_id, tile)

let tile_loss t ~array_id ~tile =
  let k = (array_id, tile) in
  let cam = Option.value ~default:0 (Hashtbl.find_opt t.stuck_cam k) in
  let sw = Option.value ~default:0 (Hashtbl.find_opt t.stuck_switch k) in
  let repaired = min cam t.spare_cols in
  ((cam - repaired) + sw, repaired)

let usable_cols t ~array_id ~tile ~nominal =
  if is_dead_tile t ~array_id ~tile then 0
  else
    let lost, _ = tile_loss t ~array_id ~tile in
    max 0 (nominal - lost)

let pp fmt t =
  if t.trivial then Format.fprintf fmt "pristine chip"
  else begin
    let sum h = Hashtbl.fold (fun _ n acc -> acc + n) h 0 in
    Format.fprintf fmt "chip: %s arrays, %d dead tile(s), %d stuck CAM col(s), %d stuck switch row(s), %d spare col(s)/tile"
      (match t.chip_arrays with None -> "unbounded" | Some n -> string_of_int n)
      (Hashtbl.length t.dead) (sum t.stuck_cam) (sum t.stuck_switch) t.spare_cols
  end
