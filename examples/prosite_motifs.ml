(* Protein-motif search: the LNFA showcase (Prosite is the paper's
   LNFA-dominated suite — 95% of its patterns execute as lines with
   Shift-And, and no pattern needs a bit vector).

   PROSITE syntax like C-x(2)-C-x(17,19)-C is a concatenation of residues
   and short wildcard gaps; after unfolding, each pattern is literally a
   line.  The example compiles a few classic motifs, scans a synthetic
   proteome, and reproduces the bin-size energy trade-off of Fig 10(b).

   Run with:  dune exec examples/prosite_motifs.exe *)

(* PROSITE notation -> PCRE: '-' separators, x(n) gaps, [..] classes. *)
let prosite_to_regex pattern =
  let buf = Buffer.create 32 in
  let n = String.length pattern in
  let i = ref 0 in
  while !i < n do
    (match pattern.[!i] with
    | '-' -> ()
    | 'x' ->
        if !i + 1 < n && pattern.[!i + 1] = '(' then begin
          let close = String.index_from pattern !i ')' in
          let inside = String.sub pattern (!i + 2) (close - !i - 2) in
          Buffer.add_string buf (Printf.sprintf "[A-O]{%s}" inside);
          i := close
        end
        else Buffer.add_string buf "[A-O]"
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let motifs =
  [
    ("Zinc finger C2H2", "C-x(2)-C-x(3)-F-x(5)-L-x(2)-H-x(3)-H");
    ("EF-hand calcium", "D-x-[DNS]-x(2)-[DE]-[LIVMFYW]");
    ("N-glycosylation", "N-[ST]-[AG]");
    ("Protein kinase C", "[ST]-x-[RK]");
    ("Amidation site", "x-G-[RK]-[RK]");
  ]

let () =
  let params = Rap.default_params in
  print_endline "== PROSITE motifs -> LNFA lines ==";
  let rules =
    List.map
      (fun (name, prosite) ->
        let src = prosite_to_regex prosite in
        (match Mode_select.parse_and_compile ~params src with
        | Ok c ->
            Printf.printf "  %-18s %-36s %-5s %2d states\n" name src
              (Program.mode_name c.Program.kind)
              (Program.num_states c.Program.kind)
        | Error e -> Printf.printf "  %-18s %-36s ERROR %s\n" name src (Compile_error.message e));
        src)
      motifs
  in

  (* a synthetic proteome with a planted zinc finger *)
  let st = Distributions.rng 11 in
  let buf = Buffer.create 25_000 in
  while Buffer.length buf < 12_000 do
    Buffer.add_char buf (Distributions.protein_char st)
  done;
  Buffer.add_string buf "CAACGGGFABCDELGGHIIIH";
  while Buffer.length buf < 25_000 do
    Buffer.add_char buf (Distributions.protein_char st)
  done;
  let proteome = Buffer.contents buf in

  print_endline "\n== scanning a 25k-residue proteome ==";
  List.iter2
    (fun (name, _) src ->
      let n = Rap.count_matches (Rap.matcher_exn src) proteome in
      Printf.printf "  %-18s %5d site(s)\n" name n)
    motifs rules;

  print_endline "\n== bin-size sweep (Fig 10b in miniature) ==";
  Printf.printf "  %4s %12s %12s %8s\n" "bin" "energy (uJ)" "area (mm^2)" "tiles";
  List.iter
    (fun bin_size ->
      let params = { params with Program.bin_size } in
      match Rap.simulate ~params ~regexes:rules ~input:proteome () with
      | Ok r ->
          Printf.printf "  %4d %12.3f %12.3f %8d\n" bin_size
            (Energy.total_uj r.Runner.energy)
            r.Runner.area_mm2 r.Runner.num_tiles
      | Error e -> Printf.printf "  %4d failed: %s\n" bin_size e)
    [ 1; 2; 4; 8 ]
