(* Network intrusion monitoring, the paper's motivating edge scenario
   (sect 1): a Snort-like rule set screens a traffic stream on RAP, and we
   compare the energy bill against running the same rules NFA-only
   (CAMA-style) — the reconfigurability argument in one example.

   Run with:  dune exec examples/snort_monitor.exe *)

let () =
  let params = Rap.default_params in

  (* A hand-written rule set in the three families Snort mixes: literal
     content rules (LNFA), counted-gap rules (NBVA), and unbounded-gap
     protocol rules (NFA). *)
  let rules =
    [
      (* content keywords -> LNFA *)
      "loginfail";
      "authbypass";
      "cmd\\.exe";
      "select[ ]insert";
      (* counted gaps, the r{m,n} construct -> NBVA *)
      "user.{1,32}pass";
      "host:.{0,48}evilcdn";
      "cookie=.{8,64}admin";
      "GET[ ].{1,40}\\.php\\?id=";
      (* unbounded gaps and alternations -> NFA *)
      "POST.*upload(\\.asp|\\.jsp)";
      "(wget|curl).*http";
    ]
  in
  print_endline "== rule compilation (Fig 9 decisions) ==";
  List.iter
    (fun src ->
      match Mode_select.parse_and_compile ~params src with
      | Ok c ->
          Printf.printf "  %-28s %-5s %3d states\n" src
            (Program.mode_name c.Program.kind)
            (Program.num_states c.Program.kind)
      | Error e -> Printf.printf "  %-28s ERROR %s\n" src (Compile_error.message e))
    rules;

  (* Synthesise traffic: mostly benign noise, a few embedded attacks. *)
  let attacks = [ "user=root&12345678&passwd"; "cmd.exe"; "wget -q http://x" ] in
  let buf = Buffer.create 20_000 in
  let st = Distributions.rng 42 in
  while Buffer.length buf < 20_000 do
    if Distributions.int_in st 0 199 = 0 then
      Buffer.add_string buf (Distributions.choose st (Array.of_list attacks))
    else Buffer.add_char buf (Distributions.alnum_char st)
  done;
  let traffic = Buffer.contents buf in

  print_endline "\n== streaming 20 kB of traffic ==";
  let show name arch =
    match Rap.simulate ~arch ~params ~regexes:rules ~input:traffic () with
    | Ok r ->
        Format.printf "  %-5s %6.2f Gch/s  %8.3f uJ  %6.3f mm^2  %6.3f W  %4d reports@." name
          r.Runner.throughput_gchs
          (Energy.total_uj r.Runner.energy)
          r.Runner.area_mm2 r.Runner.power_w r.Runner.match_reports;
        Some r
    | Error e ->
        Printf.printf "  %s failed: %s\n" name e;
        None
  in
  let rap = show "RAP" (Rap.rap_arch ()) in
  let cama = show "CAMA" Arch.cama in
  (match (rap, cama) with
  | Some rap, Some cama ->
      let ratio =
        Energy.total_uj cama.Runner.energy /. Float.max 1e-9 (Energy.total_uj rap.Runner.energy)
      in
      Printf.printf "\n  RAP spends %.2fx less energy than NFA-only CAMA on this mix\n" ratio
  | _ -> ());

  (* Which rules fired?  Cross-check with the reference engines. *)
  print_endline "\n== alerts (reference engines) ==";
  List.iter
    (fun src ->
      let n = Rap.count_matches (Rap.matcher_exn src) traffic in
      if n > 0 then Printf.printf "  %-28s %d alert(s)\n" src n)
    rules
